//! `swan-report` — regenerate the paper's tables and figures, and
//! maintain the golden regression baseline.
//!
//! Usage:
//!
//! ```text
//! swan-report [--quick | --scale F] [--seed N] [--threads N]
//!             [--trace-store DIR] [--trace-store-stats]
//!             [--checkpoint DIR [--resume]]
//!             [--profile [--profile-json PATH] [--profile-folded PATH]]
//!             <what>...
//! swan-report [...] --list-scenarios [--only FILTER]...
//! swan-report [...] --only FILTER [--only FILTER]...
//! swan-report [...] --checkpoint DIR --worker I/OF [--only FILTER]...
//! swan-report [--scale F] [--seed N] [--threads N] --write-golden <path>
//! swan-report [--scale F] [--seed N] [--threads N] --golden <path>
//! swan-report [--scale F] [--seed N] --replay-smoke
//! swan-report [--scale F] [--seed N] [--trace-store DIR] --perf
//! swan-report --bench-gate <current.json> <baseline.json>
//! ```
//!
//! where `<what>` is any of `tab2 tab3 fig1 fig2 fig3 tab4 tab5 fig4
//! fig5a fig5b tab6 tab7 fig6 patterns detail all`. The default scale
//! is the report scale (0.4 of paper-size inputs, preserving the
//! cache-pressure regimes); `--quick` runs a much smaller scale for a
//! fast smoke pass. `--threads N` shards the measurement campaign
//! across N worker threads at scenario-group granularity (`0` or
//! omitted: auto-detect the core count).
//!
//! Every campaign — full reports, subsets, goldens — goes through the
//! same plan → execute → aggregate pipeline. `--list-scenarios`
//! prints the scenario plan (no measurement); `--only` restricts the
//! plan with `key=value[,key=value]` filters over `lib`, `kernel`,
//! `impl`, `width`, and `core` (several `--only` flags form a union)
//! and prints one measured row per scenario.
//!
//! `--write-golden` measures the full scenario matrix and writes the
//! canonical baseline JSON; `--golden` re-measures and diffs against
//! the committed baseline, exiting non-zero on any drift. Both default
//! to the quick scale and seed 42 (the committed
//! `tests/golden/suite.json` parameters) unless `--scale`/`--seed`
//! are given explicitly.
//!
//! `--replay-smoke` checks the record-once/replay-many codec in
//! seconds: one kernel executes once while being recorded and
//! digested, the recording is replayed into a fresh digest, and the
//! two must match bit for bit (exit non-zero otherwise). CI runs it
//! ahead of the full golden check.
//!
//! `--perf` times the simulator against itself: each representative
//! kernel is recorded once and replayed through every pipeline phase
//! (decode-only, batch warm, batch timed, per-instruction reference),
//! printing ns/instr per phase and **instructions simulated per
//! second** as the headline — and asserting the batch and
//! per-instruction paths agree bit for bit. Defaults to the quick
//! scale unless `--scale` is given.
//!
//! `--bench-gate current.json baseline.json` compares the
//! element-throughput benches of a `cargo bench` JSON report
//! (`CRITERION_JSON_PATH`) against a committed baseline and exits
//! non-zero if any regressed more than 25% — the CI guard on the
//! replay hot loop's throughput.
//!
//! `--profile` composes with every measuring mode (full suite,
//! `--only` subsets, goldens, workers, `--perf`): the
//! `swan_core::profile` attribution layer is switched on for the run
//! and, when it finishes, a per-phase table (record, store I/O,
//! decode, warm, timed, checkpoint, …) plus one greppable `profile:`
//! headline go to stderr — stdout rows stay byte-identical to an
//! unprofiled run — and the machine-readable per-phase report is
//! written to `BENCH_profile.json` (`--profile-json PATH` overrides).
//! `--profile-folded PATH` additionally writes folded stacks
//! (`swan;campaign;timed 1234` per line) that `flamegraph.pl` /
//! inferno consume directly. See `docs/PERFORMANCE.md`.
//!
//! `--trace-store DIR` backs every campaign (full suite, `--only`
//! subsets, goldens) with the persistent chunked trace store rooted at
//! `DIR`: scenario groups whose recordings the store already holds are
//! replayed from disk instead of functionally executed, and misses
//! record into the store for every later run. Results are bit-identical
//! with a cold store, a warm store, or no store at all (corrupted
//! entries are detected, deleted, and re-recorded). `--trace-store-stats`
//! prints one machine-greppable `trace-store:` summary line (hits,
//! misses, bytes, evictions) after the run — CI posts it to the step
//! summary.
//!
//! `--checkpoint DIR` makes the measurement campaign (full suite and
//! `--only` subsets) *resumable*: each scenario group's measurements
//! are journaled into `DIR` (tmp + fsync + atomic rename — an entry is
//! either fully visible or absent, no matter when the process dies)
//! the moment the group completes, and groups the journal already
//! holds are loaded instead of re-simulated. A killed campaign
//! restarted with the same flags therefore resumes where it died, with
//! byte-identical output. `--resume` is the explicit coordinator form
//! (it additionally *requires* the journal, finishes any stragglers,
//! and aggregates); `--worker I/OF` runs only the `I`-th of `OF`
//! disjoint group shards into the shared journal and exits without
//! reports — launch `OF` worker processes against one `--checkpoint`
//! directory, then aggregate with `--resume`. Both print one greppable
//! `checkpoint:` summary line. Golden modes ignore the journal (they
//! pin trace digests the journal does not persist; see CONTRIBUTING,
//! "The checkpoint journal").

use std::sync::Arc;
use swan_core::report::{self, SuiteResults};
use swan_core::{
    golden, CampaignJournal, CheckpointedRun, Scale, Scenario, ScenarioFilter, SuiteRunner,
    TraceStore,
};
use swan_kernels::xp::{conv_layers, GemmF32, Shape, SpmmF32};

fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

const USAGE: &str = "usage: swan-report [--quick | --scale F] [--seed N] [--threads N]\n\
                     \x20                  [--trace-store DIR [--trace-store-stats]]\n\
                     \x20                  [--checkpoint DIR [--resume | --worker I/OF]]\n\
                     \x20                  [--profile [--profile-json PATH] [--profile-folded PATH]]\n\
                     \x20                  [--only FILTER]... [--list-scenarios]\n\
                     \x20                  [--write-golden PATH | --golden PATH]\n\
                     \x20                  [--replay-smoke | --perf | --bench-gate CUR BASE]\n\
                     \x20                  [tab2 tab3 fig1 fig2 fig3 tab4 tab5 fig4 fig5a\n\
                     \x20                   fig5b tab6 tab7 fig6 patterns detail all]";

/// Reject a malformed command line: diagnostic to stderr, usage hint,
/// exit 2 (the argument-error code, distinct from check failures' 1).
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// The flag's required value, or exit 2 with a diagnostic naming the
/// flag. A following `--flag` means the value was forgotten, not given.
fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
    match args.next() {
        Some(v) if !v.starts_with("--") => v,
        _ => die(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| die(&format!("invalid {flag} value `{raw}`")))
}

/// Every `<what>` token the report generator understands.
const REPORT_TOKENS: [&str; 16] = [
    "tab2", "tab3", "fig1", "fig2", "fig3", "tab4", "tab5", "fig4", "fig5a", "fig5b", "tab6",
    "tab7", "fig6", "patterns", "detail", "all",
];

fn main() {
    let mut scale = Scale::sim();
    let mut scale_explicit = false;
    let mut seed = 42u64;
    let mut threads = auto_threads();
    let mut golden_write: Option<String> = None;
    let mut golden_check: Option<String> = None;
    let mut list_scenarios = false;
    let mut replay_smoke = false;
    let mut perf = false;
    let mut bench_gate: Option<(String, String)> = None;
    let mut store_dir: Option<String> = None;
    let mut store_stats = false;
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut worker: Option<(usize, usize)> = None;
    let mut profile = false;
    let mut profile_json: Option<String> = None;
    let mut profile_folded: Option<String> = None;
    let mut filters: Vec<ScenarioFilter> = Vec::new();
    let mut wants: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                scale = Scale::quick();
                scale_explicit = true;
            }
            "--scale" => {
                scale = Scale(parse_num("--scale", &value_of("--scale", &mut args)));
                scale_explicit = true;
            }
            "--seed" => {
                seed = parse_num("--seed", &value_of("--seed", &mut args));
            }
            "--threads" => {
                let n: usize = parse_num("--threads", &value_of("--threads", &mut args));
                // 0 = auto-detect the worker count.
                threads = if n == 0 { auto_threads() } else { n };
            }
            "--list-scenarios" => list_scenarios = true,
            "--replay-smoke" => replay_smoke = true,
            "--perf" => perf = true,
            "--bench-gate" => {
                let cur = value_of("--bench-gate", &mut args);
                let base = match args.next() {
                    Some(v) if !v.starts_with("--") => v,
                    _ => die("--bench-gate needs <current.json> <baseline.json>"),
                };
                bench_gate = Some((cur, base));
            }
            "--trace-store" => {
                store_dir = Some(value_of("--trace-store", &mut args));
            }
            "--trace-store-stats" => store_stats = true,
            "--checkpoint" => {
                checkpoint_dir = Some(value_of("--checkpoint", &mut args));
            }
            "--resume" => resume = true,
            "--profile" => profile = true,
            "--profile-json" => {
                profile_json = Some(value_of("--profile-json", &mut args));
            }
            "--profile-folded" => {
                profile_folded = Some(value_of("--profile-folded", &mut args));
            }
            "--worker" => {
                let spec = value_of("--worker", &mut args);
                let parsed = spec.split_once('/').and_then(|(i, of)| {
                    let i: usize = i.trim().parse().ok()?;
                    let of: usize = of.trim().parse().ok()?;
                    (of >= 1 && i < of).then_some((i, of))
                });
                match parsed {
                    Some(w) => worker = Some(w),
                    None => die(&format!(
                        "invalid --worker spec `{spec}`: expected I/OF with I < OF"
                    )),
                }
            }
            "--only" => {
                let spec = value_of("--only", &mut args);
                match ScenarioFilter::parse(&spec) {
                    Ok(f) => filters.push(f),
                    Err(e) => die(&format!("invalid --only filter `{spec}`: {e}")),
                }
            }
            "--write-golden" => {
                golden_write = Some(value_of("--write-golden", &mut args));
            }
            "--golden" => {
                golden_check = Some(value_of("--golden", &mut args));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unrecognized flag `{other}`"));
            }
            other if !REPORT_TOKENS.contains(&other) => {
                die(&format!(
                    "unknown report token `{other}` (expected one of: {})",
                    REPORT_TOKENS.join(" ")
                ));
            }
            other => wants.push(other.to_string()),
        }
    }

    // Flag-dependency audit: every modifier that is meaningless
    // without its prerequisite is an up-front error (exit 2), not a
    // mid-run surprise or a silently ignored request.
    if resume && checkpoint_dir.is_none() {
        die("--resume requires --checkpoint DIR");
    }
    if worker.is_some() && checkpoint_dir.is_none() {
        die("--worker requires --checkpoint DIR");
    }
    if resume && worker.is_some() {
        die("--resume is the coordinator; a --worker shard cannot also resume-all");
    }
    if store_stats && store_dir.is_none() {
        die("--trace-store-stats requires --trace-store DIR");
    }
    if profile_json.is_some() && !profile {
        die("--profile-json requires --profile");
    }
    if profile_folded.is_some() && !profile {
        die("--profile-folded requires --profile");
    }
    if profile && bench_gate.is_some() {
        die("--bench-gate compares existing files; there is no run to --profile");
    }
    if profile && list_scenarios {
        die("--list-scenarios plans without measuring; there is no run to --profile");
    }

    // The attribution layer switches on before any measurement and
    // reports at the end of whichever mode runs below. The table and
    // headline go to stderr so stdout rows stay byte-identical to an
    // unprofiled run.
    if profile {
        swan_core::profile::set_enabled(true);
    }
    let profile_t0 = std::time::Instant::now();
    let emit_profile = |what: &str| {
        if !profile {
            return;
        }
        let rep = swan_core::profile::snapshot(profile_t0.elapsed().as_nanos() as u64);
        eprint!("{}", rep.render_table());
        eprintln!("{}", rep.headline());
        let json_path = profile_json.as_deref().unwrap_or("BENCH_profile.json");
        std::fs::write(json_path, rep.to_json()).unwrap_or_else(|e| {
            eprintln!("error: write profile json {json_path}: {e}");
            std::process::exit(1);
        });
        eprintln!("profile: {what} phases written to {json_path}");
        if let Some(path) = profile_folded.as_deref() {
            std::fs::write(path, rep.to_folded()).unwrap_or_else(|e| {
                eprintln!("error: write folded stacks {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("profile: folded stacks written to {path} (flamegraph.pl/inferno input)");
        }
    };

    if let Some((cur_path, base_path)) = bench_gate {
        // Pure file comparison — no kernels, no measurement.
        let read = |path: &str| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read bench report {path}: {e}"));
            let rows = swan_core::parse_bench_json(&text);
            if rows.is_empty() {
                eprintln!("error: no bench rows parsed from {path}");
                std::process::exit(2);
            }
            rows
        };
        let current = read(&cur_path);
        let baseline = read(&base_path);
        let outcome = swan_core::gate(&current, &baseline, 0.25);
        if outcome.lines.is_empty() {
            eprintln!("warning: baseline {base_path} has no throughput benches; nothing gated");
        }
        for line in &outcome.lines {
            println!("{line}");
        }
        if outcome.ok() {
            eprintln!(
                "bench gate OK: {} throughput bench{} within 25% of {base_path}",
                outcome.lines.len(),
                if outcome.lines.len() == 1 { "" } else { "es" }
            );
        } else {
            for r in &outcome.regressions {
                eprintln!("bench gate FAILED: {r}");
            }
            eprintln!(
                "(regenerate the baseline with `CRITERION_JSON_PATH={base_path} \
                 cargo bench -p swan-bench` if the change is intended)"
            );
            std::process::exit(1);
        }
        return;
    }

    let kernels = swan_kernels::all_kernels();

    // The persistent trace store, if requested. Opened once and shared
    // by whichever campaign runs below; keyed by this inventory.
    let store: Option<Arc<TraceStore>> = store_dir.as_ref().map(|dir| {
        Arc::new(
            TraceStore::open(dir, &kernels)
                .unwrap_or_else(|e| panic!("open trace store {dir}: {e}")),
        )
    });
    let print_store_stats = || {
        if !store_stats {
            return;
        }
        if let Some(s) = &store {
            let st = s.stats();
            let (entries, bytes) = s.disk_usage();
            eprintln!(
                "trace-store: dir={} entries={entries} bytes={bytes} hits={} misses={} \
                 inserts={} corrupt_replaced={} evictions={} read={} written={}",
                s.dir().display(),
                st.hits,
                st.misses,
                st.inserts,
                st.corrupt_replaced,
                st.evictions,
                st.bytes_read,
                st.bytes_written,
            );
        }
    };

    // The campaign checkpoint journal, if requested. Opened where the
    // scale is final (perf/golden modes adjust it after parsing);
    // keyed by the inventory, scale, and seed like the trace store.
    let open_journal = |scale: Scale| -> Arc<CampaignJournal> {
        let dir = checkpoint_dir.as_ref().expect("checkpoint dir set");
        Arc::new(
            CampaignJournal::open(dir, &kernels, scale, seed)
                .unwrap_or_else(|e| panic!("open checkpoint journal {dir}: {e}")),
        )
    };
    let print_checkpoint_stats = |journal: &CampaignJournal, run: &CheckpointedRun| {
        let s = journal.stats();
        eprintln!(
            "checkpoint: dir={} groups={} resumed={} executed={} skipped={} \
             discarded={} written={} bytes={}",
            journal.dir().display(),
            run.total_groups,
            run.resumed_groups,
            run.executed_groups,
            run.skipped_groups,
            s.discarded,
            s.written,
            s.bytes_written,
        );
    };
    let exit_on_failures = |failures: &[swan_core::KernelFailure]| {
        if failures.is_empty() {
            return;
        }
        for f in failures {
            eprintln!("campaign kernel failed: {}: {}", f.id, f.message);
        }
        std::process::exit(1);
    };

    if let Some((wi, wof)) = worker {
        // Worker mode: simulate one disjoint shard of the remaining
        // scenario groups into the shared journal, then exit — the
        // coordinator (`--resume`) aggregates once every shard is in.
        if golden_write.is_some()
            || golden_check.is_some()
            || list_scenarios
            || replay_smoke
            || perf
        {
            eprintln!("error: --worker only executes campaign groups; run other modes separately");
            std::process::exit(2);
        }
        if !wants.is_empty() {
            eprintln!(
                "warning: --worker journals measurements without aggregating; \
                 table/figure tokens ignored: {}",
                wants.join(" ")
            );
        }
        let journal = open_journal(scale);
        let full = swan_core::plan(&kernels, scale, seed);
        let selected = swan_core::filter_plan(&full, &filters);
        if selected.is_empty() {
            eprintln!("--only filters match no scenarios (try --list-scenarios)");
            std::process::exit(2);
        }
        let t0 = std::time::Instant::now();
        eprintln!(
            "worker {wi}/{wof}: {} scenarios at scale {:.5} (seed {seed}, {threads} thread{})...",
            selected.len(),
            scale.0,
            if threads == 1 { "" } else { "s" }
        );
        let run = swan_core::try_execute_plan_checkpointed(
            &kernels,
            &selected,
            threads,
            store.as_deref(),
            &journal,
            Some((wi, wof)),
            |msg| eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32()),
        );
        print_store_stats();
        let s = journal.stats();
        eprintln!(
            "checkpoint-worker: shard={wi}/{wof} groups={} resumed={} executed={} \
             skipped={} failures={} discarded={} written={} bytes={}",
            run.total_groups,
            run.resumed_groups,
            run.executed_groups,
            run.skipped_groups,
            run.failures.len(),
            s.discarded,
            s.written,
            s.bytes_written,
        );
        eprintln!("worker done in {:.1}s", t0.elapsed().as_secs_f32());
        emit_profile("worker shard");
        exit_on_failures(&run.failures);
        return;
    }

    if checkpoint_dir.is_some()
        && (perf
            || replay_smoke
            || list_scenarios
            || golden_write.is_some()
            || golden_check.is_some())
    {
        // Golden baselines and probes must observe a full functional
        // execution; resuming from a journal would let a stale entry
        // masquerade as a fresh measurement.
        eprintln!("warning: this mode re-simulates unconditionally; --checkpoint/--resume ignored");
    }

    if perf {
        if golden_write.is_some() || golden_check.is_some() || list_scenarios || replay_smoke {
            eprintln!("error: --perf is a standalone mode; run other checks separately");
            std::process::exit(2);
        }
        if !filters.is_empty() {
            eprintln!("warning: --perf always probes the representative kernels; --only ignored");
        }
        if !scale_explicit {
            scale = Scale::quick();
        }
        let t0 = std::time::Instant::now();
        eprintln!(
            "perf probe at scale {:.5} (seed {seed}, {} kernels)...",
            scale.0,
            swan_core::perf::REPRESENTATIVES.len()
        );
        let rep = swan_core::probe(&kernels, scale, seed, store.as_deref());
        print_store_stats();
        print!("{}", rep.render());
        eprintln!("perf probe done in {:.1}s", t0.elapsed().as_secs_f32());
        emit_profile("perf probe");
        return;
    }

    if replay_smoke {
        // Record one kernel's dynamic stream while digesting it live,
        // replay the recording, and require bit-identical digests —
        // the fast stand-in for the full replay ≡ execute proof the
        // golden suite provides.
        if golden_write.is_some() || golden_check.is_some() || list_scenarios || !wants.is_empty() {
            eprintln!(
                "error: --replay-smoke is a standalone check; run --golden / \
                 --write-golden / --list-scenarios / table-figure reports as \
                 separate invocations"
            );
            std::process::exit(2);
        }
        if !filters.is_empty() {
            eprintln!("warning: --replay-smoke always records ZL.adler32; --only filters ignored");
        }
        if store.is_some() {
            eprintln!(
                "warning: --replay-smoke exercises the in-memory codec; --trace-store ignored"
            );
        }
        if !scale_explicit {
            scale = Scale::quick();
        }
        let id = "ZL.adler32";
        let kernel = kernels
            .iter()
            .find(|k| k.meta().id() == id)
            .expect("replay-smoke kernel");
        let mut inst = kernel.instantiate(scale, seed);
        let (data, tee, ()) = swan_simd::stream_into_at(
            swan_simd::Width::W128,
            swan_simd::TeeRecord::new(swan_simd::HashSink::new()),
            || inst.run(swan_core::Impl::Neon, swan_simd::trace::session_width()),
        );
        let (enc, live) = tee.finish();
        let mut replayed = swan_simd::HashSink::new();
        enc.replay_into(&mut replayed);
        eprintln!(
            "replay smoke {id} (scale {:.5}, seed {seed}): {} instrs, \
             live digest {:016x}, replay digest {:016x}, {} encoded bytes \
             ({} materialized)",
            scale.0,
            data.total(),
            live.digest(),
            replayed.digest(),
            enc.encoded_bytes(),
            enc.naive_bytes(),
        );
        if live.digest() != replayed.digest() || live.count() != replayed.count() {
            eprintln!("replay smoke FAILED: recorded replay diverges from the live stream");
            std::process::exit(1);
        }
        eprintln!("replay smoke OK: replay is bit-identical to the live execution");
        emit_profile("replay smoke");
        return;
    }

    if list_scenarios {
        if golden_write.is_some() || golden_check.is_some() {
            eprintln!(
                "warning: --list-scenarios only prints the plan; --write-golden/--golden ignored"
            );
        }
        // Plan only — no measurement. Composes with --only.
        let full = swan_core::plan(&kernels, scale, seed);
        let selected = swan_core::filter_plan(&full, &filters);
        for sc in &selected {
            println!("{}", sc.id());
        }
        eprintln!(
            "{} scenarios ({} planned, {} kernels, scale {:.5}, seed {seed})",
            selected.len(),
            full.len(),
            kernels.len(),
            scale.0
        );
        return;
    }

    if golden_write.is_some() || golden_check.is_some() {
        if !wants.is_empty() {
            eprintln!(
                "warning: golden mode ignores table/figure tokens: {}",
                wants.join(" ")
            );
        }
        if !filters.is_empty() {
            eprintln!(
                "warning: golden baselines always cover the full scenario matrix; \
                 --only filters ignored"
            );
        }
        // The committed baseline is generated at the quick scale.
        if !scale_explicit {
            scale = Scale::quick();
        }
        // Read the baseline up front so a bad path fails in
        // milliseconds, not after the whole campaign has run.
        let check = golden_check.map(|path| {
            let expected = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read golden baseline {path}: {e}"));
            (path, expected)
        });
        let t0 = std::time::Instant::now();
        eprintln!(
            "collecting golden campaign at scale {:.5} (seed {seed}, {threads} thread{})...",
            scale.0,
            if threads == 1 { "" } else { "s" }
        );
        let entries =
            golden::collect_with(&kernels, scale, seed, threads, store.as_deref(), |msg| {
                eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32());
            });
        print_store_stats();
        let actual = golden::to_json(scale, seed, &entries);
        if let Some(path) = golden_write {
            std::fs::write(&path, &actual).expect("write golden baseline");
            eprintln!(
                "wrote {} entries to {path} in {:.1}s",
                entries.len(),
                t0.elapsed().as_secs_f32()
            );
        }
        if let Some((path, expected)) = check {
            match golden::diff(&expected, &actual, 40) {
                None => eprintln!(
                    "golden check OK: {} entries match {path} ({:.1}s)",
                    entries.len(),
                    t0.elapsed().as_secs_f32()
                ),
                Some(d) => {
                    eprintln!("golden check FAILED against {path}:");
                    eprint!("{d}");
                    eprintln!(
                        "(regenerate with `swan-report --write-golden {path}` \
                         if the change is intended)"
                    );
                    std::process::exit(1);
                }
            }
        }
        emit_profile("golden campaign");
        return;
    }

    if !filters.is_empty() {
        // Scenario-subset mode: the same plan/execute path as the full
        // campaign, restricted by the --only filters, reported
        // per-scenario (a subset has no complete per-kernel matrix to
        // aggregate).
        if !wants.is_empty() {
            eprintln!(
                "warning: --only selects scenarios; table/figure tokens ignored: {}",
                wants.join(" ")
            );
        }
        let full = swan_core::plan(&kernels, scale, seed);
        let selected = swan_core::filter_plan(&full, &filters);
        if selected.is_empty() {
            eprintln!("--only filters match no scenarios (try --list-scenarios)");
            std::process::exit(2);
        }
        let t0 = std::time::Instant::now();
        eprintln!(
            "running {} of {} scenarios at scale {:.5} (seed {seed}, {threads} thread{})...",
            selected.len(),
            full.len(),
            scale.0,
            if threads == 1 { "" } else { "s" }
        );
        let measurements = if checkpoint_dir.is_some() {
            let journal = open_journal(scale);
            let run = swan_core::try_execute_plan_checkpointed(
                &kernels,
                &selected,
                threads,
                store.as_deref(),
                &journal,
                None,
                |msg| eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32()),
            );
            print_checkpoint_stats(&journal, &run);
            exit_on_failures(&run.failures);
            run.measurements
                .into_iter()
                .map(|m| m.expect("no failures, so every group measured"))
                .collect()
        } else {
            swan_core::execute_plan_with(&kernels, &selected, threads, store.as_deref(), |msg| {
                eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32());
            })
        };
        print_store_stats();
        print_scenarios(&selected, &measurements);
        eprintln!("done in {:.1}s", t0.elapsed().as_secs_f32());
        emit_profile("scenario subset");
        return;
    }

    if wants.is_empty() {
        wants.push("all".to_string());
    }
    let all = wants.iter().any(|w| w == "all");
    let want = |w: &str| all || wants.iter().any(|x| x == w);

    if want("tab2") {
        println!("{}", report::tab2(&kernels));
    }
    if want("tab3") {
        println!("{}", report::tab3());
    }
    if want("patterns") {
        println!("{}", report::patterns(&kernels));
    }

    let needs_suite = [
        "fig1", "fig2", "fig3", "tab4", "tab5", "fig4", "fig5a", "fig5b", "tab6", "tab7", "detail",
    ]
    .iter()
    .any(|w| want(w));
    let suite: Option<SuiteResults> = if needs_suite {
        eprintln!(
            "running suite at scale {:.3} (seed {seed}, {threads} thread{})...",
            scale.0,
            if threads == 1 { "" } else { "s" }
        );
        let t0 = std::time::Instant::now();
        let s = if checkpoint_dir.is_some() {
            // Checkpointed campaign: resume whatever the journal
            // already holds (from a killed run or `--worker` shards),
            // simulate only the remaining groups, aggregate as usual.
            let journal = open_journal(scale);
            let full = swan_core::plan(&kernels, scale, seed);
            let run = swan_core::try_execute_plan_checkpointed(
                &kernels,
                &full,
                threads,
                store.as_deref(),
                &journal,
                None,
                |msg| eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32()),
            );
            print_checkpoint_stats(&journal, &run);
            exit_on_failures(&run.failures);
            swan_core::aggregate(&kernels, &full, &run.measurements, scale)
        } else {
            let mut runner = SuiteRunner::new(scale, seed).threads(threads);
            if let Some(s) = &store {
                runner = runner.store(s.clone());
            }
            runner.run(&kernels, |msg| {
                eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32());
            })
        };
        eprintln!("suite done in {:.1}s", t0.elapsed().as_secs_f32());
        print_store_stats();
        Some(s)
    } else {
        None
    };

    if let Some(suite) = &suite {
        if want("fig1") {
            println!("{}", report::fig1(suite));
        }
        if want("fig2") {
            println!("{}", report::fig2(suite));
        }
        if want("fig3") {
            println!("{}", report::fig3(suite));
        }
        if want("tab4") {
            println!("{}", report::tab4(suite));
        }
        if want("tab5") {
            println!("{}", report::tab5(suite));
        }
        if want("fig4") {
            println!("{}", report::fig4(suite));
        }
        if want("fig5a") {
            println!("{}", report::fig5a(suite));
        }
        if want("fig5b") {
            println!("{}", report::fig5b(suite));
        }
        if want("tab6") {
            println!("{}", report::tab6(suite));
        }
        if want("tab7") {
            println!("{}", report::tab7(suite));
        }
        if want("detail") {
            println!("{}", report::kernel_detail(suite));
        }
    }

    if want("fig6") {
        let layers: Vec<(usize, usize, usize)> =
            conv_layers().iter().map(|s| (s.m, s.k, s.n)).collect();
        let t0 = std::time::Instant::now();
        let (_, _, rep) = report::fig6(
            &layers,
            13,
            |m, k, n| Box::new(GemmF32::with_shape(Shape { m, k, n })),
            |m, k, n| Box::new(SpmmF32::with_shape(Shape { m, k, n })),
            |msg| eprintln!("  [{:6.1}s] {msg}", t0.elapsed().as_secs_f32()),
        );
        println!("{rep}");
    }

    emit_profile("report suite");
}

/// Print one measured row per scenario (the `--only` output form).
/// Rendered by `report::scenario_row` — the same formatter `swan-serve`
/// streams — so served query output diffs clean against batch output.
fn print_scenarios(plan: &[Scenario], measurements: &[swan_core::Measurement]) {
    print!("{}", report::scenario_row_header());
    for (sc, m) in plan.iter().zip(measurements) {
        println!("{}", report::scenario_row(sc, m));
    }
}
