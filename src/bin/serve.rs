//! `swan-serve` — the campaign-as-a-service daemon.
//!
//! Usage:
//!
//! ```text
//! swan-serve [--quick | --scale F] [--seed N] [--workers N]
//!            [--queue-cap N] [--cache-groups N] [--max-requests N]
//!            [--trace-store DIR] [--pipe | --socket PATH]
//! ```
//!
//! The daemon builds the scenario plan once (default: the quick scale,
//! seed 42 — the committed golden parameters) and then answers
//! line-delimited requests, each a `ScenarioFilter` spec in the
//! `swan-report --only` syntax (`;` separates union alternatives, an
//! optional `id|` prefix names the request, `*` selects the full
//! plan). `stats` prints the counter line, `quit` ends the session.
//!
//! `--pipe` (the default) serves one session on stdin/stdout — the
//! form tests and CI drive. `--socket PATH` binds a Unix domain
//! socket and serves each connection as its own session, concurrently,
//! until the process is killed.
//!
//! Row lines are byte-identical to `swan-report --only` output for the
//! same filter: strip the `<id> row ` prefix and the remaining bytes
//! match the batch table's rows, whatever tier (cache, shared
//! in-flight execution, trace-store replay, fresh simulation) answered
//! them. `--workers N` sizes the execution pool (0 or omitted:
//! auto-detect), `--queue-cap` bounds the work queue (full queue =
//! backpressure, not memory growth), `--cache-groups` bounds the warm
//! result cache, and `--max-requests` caps concurrent sessions'
//! handlers.

use std::io::{self, BufReader};
use std::process::exit;
use std::sync::Arc;
use swan_core::{Scale, TraceStore};
use swan_serve::{Server, ServerConfig};

const USAGE: &str = "usage: swan-serve [--quick | --scale F] [--seed N] [--workers N]\n\
                     \x20                 [--queue-cap N] [--cache-groups N] [--max-requests N]\n\
                     \x20                 [--trace-store DIR] [--pipe | --socket PATH]";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

/// The flag's required value, or exit 2 with a diagnostic naming it.
fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
    match args.next() {
        // A following `--flag` means the value was forgotten, not given.
        Some(v) if !v.starts_with("--") => v,
        _ => die(&format!("{flag} needs a value")),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| die(&format!("invalid {flag} value `{raw}`")))
}

fn main() {
    let mut config = ServerConfig {
        workers: 0, // 0 = auto-detect below
        ..ServerConfig::default()
    };
    let mut store_dir: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut pipe = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => config.scale = Scale::quick(),
            "--scale" => {
                config.scale = Scale(parse_num("--scale", &value_of("--scale", &mut args)))
            }
            "--seed" => config.seed = parse_num("--seed", &value_of("--seed", &mut args)),
            "--workers" => {
                config.workers = parse_num("--workers", &value_of("--workers", &mut args));
            }
            "--queue-cap" => {
                config.queue_cap = parse_num("--queue-cap", &value_of("--queue-cap", &mut args));
            }
            "--cache-groups" => {
                config.cache_groups =
                    parse_num("--cache-groups", &value_of("--cache-groups", &mut args));
            }
            "--max-requests" => {
                config.max_requests =
                    parse_num("--max-requests", &value_of("--max-requests", &mut args));
            }
            "--trace-store" => store_dir = Some(value_of("--trace-store", &mut args)),
            "--socket" => socket = Some(value_of("--socket", &mut args)),
            "--pipe" => pipe = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unrecognized argument `{other}`")),
        }
    }
    if pipe && socket.is_some() {
        die("--pipe and --socket are mutually exclusive");
    }
    if config.workers == 0 {
        config.workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    }

    let kernels = swan_kernels::all_kernels();
    let store: Option<Arc<TraceStore>> = store_dir.map(|dir| {
        Arc::new(TraceStore::open(&dir, &kernels).unwrap_or_else(|e| {
            eprintln!("error: open trace store {dir}: {e}");
            exit(2);
        }))
    });
    let has_store = store.is_some();
    let server = Server::new(kernels, store, config);
    eprintln!(
        "swan-serve: {} scenarios in {} groups at scale {:.5} (seed {}), \
         {} workers, cache {} groups, store {}",
        server.plan_len(),
        server.total_groups(),
        server.config().scale.0,
        server.config().seed,
        server.config().workers,
        server.config().cache_groups,
        if has_store { "on" } else { "off" },
    );

    match socket {
        None => {
            // Pipe mode: one session over stdin/stdout, then exit.
            let stdin = io::stdin();
            if let Err(e) = server.serve_lines(stdin.lock(), io::stdout()) {
                eprintln!("error: session I/O failed: {e}");
                exit(1);
            }
        }
        Some(path) => serve_socket(&server, &path),
    }
}

/// Bind a Unix domain socket and serve each connection as its own
/// session until the process is killed. A stale socket file left by a
/// previous daemon is replaced; any other kind of file at the path is
/// refused.
fn serve_socket(server: &Server, path: &str) {
    use std::os::unix::fs::FileTypeExt;
    use std::os::unix::net::UnixListener;

    if let Ok(meta) = std::fs::symlink_metadata(path) {
        if !meta.file_type().is_socket() {
            die(&format!("--socket path {path} exists and is not a socket"));
        }
        std::fs::remove_file(path)
            .unwrap_or_else(|e| die(&format!("remove stale socket {path}: {e}")));
    }
    let listener =
        UnixListener::bind(path).unwrap_or_else(|e| die(&format!("bind --socket {path}: {e}")));
    eprintln!("swan-serve: listening on {path}");
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let reader = match stream.try_clone() {
                        Ok(r) => BufReader::new(r),
                        Err(e) => {
                            eprintln!("swan-serve: clone connection: {e}");
                            continue;
                        }
                    };
                    scope.spawn(move || {
                        if let Err(e) = server.serve_lines(reader, stream) {
                            eprintln!("swan-serve: session ended with I/O error: {e}");
                        }
                    });
                }
                Err(e) => {
                    eprintln!("swan-serve: accept failed: {e}");
                    break;
                }
            }
        }
    });
}
