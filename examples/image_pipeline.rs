//! Image-decode pipeline: chains the image-processing kernels the way
//! a browser decodes and rasterizes a JPEG — color conversion, chroma
//! upsampling, convolution-based scaling, and a final blit — and
//! reports the end-to-end scalar vs vector cost on the Prime core.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use swan::prelude::*;
use swan_core::Library;

fn main() {
    let scale = Scale::quick();
    let prime = CoreConfig::prime();
    let pipeline = [
        ("LJ", "ycbcr_to_rgb"),
        ("LJ", "upsample_h2v1"),
        ("SK", "convolve_vertical"),
        ("SK", "blit_row_srcover"),
    ];
    let kernels = swan::suite();
    let mut total_scalar = 0.0;
    let mut total_neon = 0.0;
    println!("image pipeline (HD-width rows, scaled inputs):\n");
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "stage", "scalar(us)", "neon(us)", "speedup"
    );
    for (lib, name) in pipeline {
        let k = kernels
            .iter()
            .find(|k| {
                k.meta().library == Library::from_symbol(lib).unwrap() && k.meta().name == name
            })
            .expect("pipeline kernel exists");
        let s = measure(k.as_ref(), Impl::Scalar, Width::W128, &prime, scale, 7);
        let v = measure(k.as_ref(), Impl::Neon, Width::W128, &prime, scale, 7);
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>8.2}x",
            format!("{lib}.{name}"),
            s.seconds() * 1e6,
            v.seconds() * 1e6,
            s.seconds() / v.seconds()
        );
        total_scalar += s.seconds();
        total_neon += v.seconds();
    }
    println!(
        "\npipeline total: scalar {:.1} us, neon {:.1} us -> {:.2}x end to end",
        total_scalar * 1e6,
        total_neon * 1e6,
        total_scalar / total_neon
    );
    println!("(fine-grain stages like these are why browsers keep them on the CPU\n vector units instead of paying a ~230 us GPU kernel-launch per stage)");
}
