//! CNN-layer offload advisor: for a ladder of convolutional layer
//! shapes (as GEMMs), simulate the Neon time and compare with the
//! Adreno-class GPU model to find the crossover the paper's Figure 6
//! reports near 4 MFLOP.
//!
//! ```text
//! cargo run --release --example ml_offload
//! ```

use swan::prelude::*;
use swan_accel::GpuModel;
use swan_core::{capture, simulate_trace};
use swan_kernels::xp::{conv_layers, GemmF32, Shape};

fn main() {
    let prime = CoreConfig::prime();
    let gpu = GpuModel::default();
    let layers = conv_layers();
    println!("CNN layer offload advisor (dense FP32 GEMM):\n");
    println!(
        "{:>4} {:>22} {:>10} {:>11} {:>11}  advice",
        "#", "layer (MxKxN)", "MACs", "Neon (us)", "GPU (us)"
    );
    let mut crossover: Option<u64> = None;
    // Measure a denser ladder for the crossover, print sparsely.
    for (i, s) in layers.iter().enumerate().step_by(13) {
        let kernel = GemmF32::with_shape(Shape {
            m: s.m,
            k: s.k,
            n: s.n,
        });
        let (tr, macs) = capture(&kernel, Impl::Neon, Width::W128, Scale(1.0), 9);
        let neon = simulate_trace(&tr, &prime, 1.0, macs);
        let gpu_t = gpu.gemm_time(macs).seconds().unwrap();
        let advice = if neon.seconds() <= gpu_t {
            "keep on Neon"
        } else {
            "offload to GPU"
        };
        if gpu_t < neon.seconds() && crossover.is_none() {
            // Refine: effective Neon rate is ~constant, so solve
            // overhead = m*(1/neon_rate - 1/gpu_rate).
            let neon_rate = macs as f64 / neon.seconds();
            crossover = Some(gpu.crossover_macs(neon_rate, gpu.gemm_efficiency) as u64);
        }
        if i % 26 == 0 {
            println!(
                "{:>4} {:>22} {:>10} {:>11.1} {:>11.1}  {}",
                i,
                format!("{}x{}x{}", s.m, s.k, s.n),
                macs,
                neon.seconds() * 1e6,
                gpu_t * 1e6,
                advice
            );
        }
    }
    match crossover {
        Some(m) => println!(
            "\ncrossover near {:.1}M MACs — the paper's Figure 6 places it at ~4M.",
            m as f64 / 1e6
        ),
        None => println!("\nno crossover in the sampled range"),
    }
}
