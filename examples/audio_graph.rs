//! WebAudio-style render graph: merge four sources, apply gain, FIR
//! convolution (room effect), clipping and an audibility check — the
//! per-frame node chain the paper's WA library serves — and compare
//! the three builds plus the accelerator-offload decision.
//!
//! ```text
//! cargo run --release --example audio_graph
//! ```

use swan::prelude::*;
use swan_accel::{decide, DspModel, GpuModel, OffloadDecision};
use swan_core::Library;

fn main() {
    let scale = Scale::quick();
    let prime = CoreConfig::prime();
    let graph = [
        "merge_channels",
        "gain",
        "convolve_fir",
        "vector_clip",
        "audible",
    ];
    let kernels = swan::suite();
    let gpu = GpuModel::default();
    let dsp = DspModel::default();
    println!("WebAudio render graph (one 44.1 kHz stream):\n");
    println!(
        "{:<16} {:>11} {:>10} {:>9}  {:<10} {:<10}",
        "node", "scalar(us)", "neon(us)", "speedup", "vs GPU", "vs DSP"
    );
    let mut neon_total = 0.0;
    for name in graph {
        let k = kernels
            .iter()
            .find(|k| k.meta().library == Library::WA && k.meta().name == name)
            .expect("graph node exists");
        let s = measure(k.as_ref(), Impl::Scalar, Width::W128, &prime, scale, 3);
        let v = measure(k.as_ref(), Impl::Neon, Width::W128, &prime, scale, 3);
        neon_total += v.seconds();
        // Each node is a tiny kernel: offloading pays launch overhead.
        let flops = v.trace.total(); // order-of-magnitude op count
        let gpu_t = gpu.gemm_time(flops);
        let dsp_t = dsp.time(flops, k.meta().is_float);
        let lab = |d: OffloadDecision| match d {
            OffloadDecision::StayOnCpu => "CPU wins",
            OffloadDecision::Offload => "offload",
        };
        println!(
            "{:<16} {:>11.1} {:>10.1} {:>8.2}x  {:<10} {:<10}",
            name,
            s.seconds() * 1e6,
            v.seconds() * 1e6,
            s.seconds() / v.seconds(),
            lab(decide(v.seconds(), gpu_t)),
            match dsp_t.seconds() {
                Some(t) => lab(decide(v.seconds(), swan_accel::OffloadTime::Seconds(t))),
                None => "no FP",
            },
        );
    }
    println!(
        "\ngraph total on Neon: {:.1} us per buffer — far below the 230 us GPU\nkernel-launch overhead alone (paper Table 7), so every node stays on the CPU.",
        neon_total * 1e6
    );
}
