//! Parallel suite campaign: measure a kernel subset across worker
//! threads with [`SuiteRunner`] and print the per-library speedup
//! summary — the multi-threaded path `swan-report --threads N` uses
//! for the full 59-kernel campaign.
//!
//! ```text
//! cargo run --release --example campaign [threads]
//! ```

use std::collections::BTreeMap;
use swan::prelude::*;
use swan_core::report::library_speedups;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("thread count"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let kernels = swan::suite();
    println!(
        "campaign over {} kernels on {threads} thread{}...",
        kernels.len(),
        if threads == 1 { "" } else { "s" }
    );

    let t0 = std::time::Instant::now();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let suite = SuiteRunner::new(Scale::test(), 42)
        .threads(threads)
        .run(&kernels, |msg| {
            let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            eprintln!("  [{n:>2}/{}] {msg}", kernels.len());
        });
    println!("campaign finished in {:.1}s\n", t0.elapsed().as_secs_f32());

    let speedups: BTreeMap<Library, f64> = library_speedups(&suite);
    println!("{:<6} {:>14}", "lib", "Neon perf(x)");
    for (lib, s) in &speedups {
        println!("{:<6} {:>14.2}", lib.to_string(), s);
    }
    let geomean = speedups.values().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    println!("\nsuite geomean speedup: {:.2}x", geomean.exp());
}
