//! Quickstart: run one Swan kernel in all three builds and compare.
//!
//! ```text
//! cargo run --release --example quickstart [LIB.kernel]
//! ```

use swan::prelude::*;

fn main() {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ZL.adler32".into());
    let kernels = swan::suite();
    let kernel = kernels
        .iter()
        .find(|k| k.meta().id() == target)
        .unwrap_or_else(|| {
            eprintln!("unknown kernel {target}; available:");
            for k in &kernels {
                eprintln!("  {}", k.meta().id());
            }
            std::process::exit(1);
        });
    let meta = kernel.meta();
    println!("kernel     : {} ({})", meta.id(), meta.library.info().name);
    println!(
        "precision  : {} bits (VRE at 128-bit = {})",
        meta.precision_bits,
        meta.vre(Width::W128)
    );

    // Correctness first: Scalar and every Neon width must agree.
    verify_kernel(kernel.as_ref(), Scale::test(), 42).expect("outputs match");
    println!("verified   : Scalar == Neon at 128/256/512/1024 bits");

    let prime = CoreConfig::prime();
    let scale = Scale::quick();
    let scalar = measure(
        kernel.as_ref(),
        Impl::Scalar,
        Width::W128,
        &prime,
        scale,
        42,
    );
    let auto = measure(kernel.as_ref(), Impl::Auto, Width::W128, &prime, scale, 42);
    let neon = measure(kernel.as_ref(), Impl::Neon, Width::W128, &prime, scale, 42);

    println!(
        "\n{:<8} {:>12} {:>10} {:>8} {:>10} {:>10}",
        "impl", "instrs", "cycles", "IPC", "time(us)", "power(W)"
    );
    for (name, m) in [("Scalar", &scalar), ("Auto", &auto), ("Neon", &neon)] {
        println!(
            "{:<8} {:>12} {:>10} {:>8.2} {:>10.1} {:>10.2}",
            name,
            m.trace.total(),
            m.sim.cycles,
            m.sim.ipc(),
            m.seconds() * 1e6,
            m.power_w
        );
    }
    println!(
        "\nNeon speedup {:.2}x, instruction reduction {:.2}x, energy saving {:.2}x",
        scalar.seconds() / neon.seconds(),
        scalar.trace.total() as f64 / neon.trace.total() as f64,
        scalar.energy_j / neon.energy_j
    );

    // The streaming fan-out: one traced execution pair drives several
    // core models at once (no materialized trace, no re-capture).
    let cores = [
        CoreConfig::prime(),
        CoreConfig::gold(),
        CoreConfig::silver(),
    ];
    let multi = measure_multi(kernel.as_ref(), Impl::Neon, Width::W128, &cores, scale, 42);
    println!("\nNeon across cores (single traced execution):");
    for (cfg, m) in cores.iter().zip(&multi) {
        println!(
            "  {:<28} {:>10} cycles {:>9.1} us {:>7.2} W",
            cfg.name,
            m.sim.cycles,
            m.seconds() * 1e6,
            m.power_w
        );
    }
}
