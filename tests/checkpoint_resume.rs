//! Kill-resume fault injection: a campaign killed with SIGKILL at a
//! randomized point must resume to *byte-identical* report output,
//! without one functional re-execution of any completed group.
//!
//! The subprocess tests drive the real `swan-report` binary (the same
//! code path CI and users run) against a shared checkpoint directory,
//! killing it the instant the journal reaches a randomized entry
//! count — so the kill lands inside the campaign, between, and (by
//! scheduling jitter) *during* entry commits. The in-process tests pin
//! the zero-re-execution guarantee with a counting kernel, which a
//! subprocess boundary cannot observe.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};
use swan::prelude::*;
use swan_core::{CampaignJournal, Runnable};

const SEED: u64 = 7;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swan-report")
}

/// `Scale::test()` rendered the way a shell user would pass it:
/// `{}` prints the shortest string that round-trips to the same bits,
/// so the subprocess campaign runs at *exactly* the in-process scale.
fn scale_arg() -> String {
    format!("{}", Scale::test().0)
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swan-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journal_entries(dir: &Path) -> usize {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return 0;
    };
    rd.flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("swcp"))
        .count()
}

/// The fault-injection subset: three libraries, ~48 scenario groups,
/// a couple of seconds of simulation — wide enough that SIGKILL
/// reliably lands mid-campaign (one group is ~35ms).
const KILL_SUBSET: [&str; 6] = ["--only", "lib=ZL", "--only", "lib=LJ", "--only", "lib=SK"];

/// Run the campaign subprocess to completion and return its output.
fn run_campaign(extra: &[&str]) -> std::process::Output {
    let out = Command::new(bin())
        .args(["--scale", &scale_arg(), "--seed", "7"])
        .args(KILL_SUBSET)
        .args(["--threads", "2"])
        .args(extra)
        .output()
        .expect("spawn swan-report");
    assert!(
        out.status.success(),
        "swan-report {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A tiny deterministic LCG (no external RNG in the container), seeded
/// from the wall clock so successive CI runs kill at different points;
/// the seed is printed so any failure replays exactly.
struct Lcg(u64);

impl Lcg {
    fn from_clock() -> Lcg {
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
            | 1;
        eprintln!("kill-point LCG seed: {seed:#x}");
        Lcg(seed)
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

/// SIGKILL a checkpointed campaign at randomized journal fill levels —
/// repeatedly, so later rounds also exercise resume-then-die — and
/// require the final resumed run's stdout to be byte-identical to an
/// uninterrupted run's.
#[test]
fn sigkilled_campaign_resumes_to_byte_identical_output() {
    let reference = run_campaign(&[]);
    assert!(!reference.stdout.is_empty(), "reference must print rows");

    let dir = test_dir("sigkill");
    let dir_s = dir.to_str().expect("utf8 temp dir").to_string();
    let mut lcg = Lcg::from_clock();
    let mut killed = 0u32;
    for _round in 0..4 {
        // Kill when the journal has grown by a random 1..=12 entries
        // (the subset has ~48 groups; thresholds beyond the remaining
        // count just let the child finish, which the loop tolerates).
        let threshold = journal_entries(&dir) + 1 + lcg.next(12) as usize;
        let mut child = Command::new(bin())
            .args(["--scale", &scale_arg(), "--seed", "7"])
            .args(KILL_SUBSET)
            .args(["--threads", "2"])
            .args(["--checkpoint", &dir_s])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn checkpointed campaign");
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut completed = false;
        loop {
            if journal_entries(&dir) >= threshold {
                // SIGKILL: no destructors, no flushes — the crash the
                // journal's atomic-rename protocol must survive.
                let _ = child.kill();
                killed += 1;
                break;
            }
            if child.try_wait().expect("try_wait").is_some() {
                completed = true;
                break;
            }
            assert!(Instant::now() < deadline, "campaign subprocess hung");
            std::thread::sleep(Duration::from_micros(300));
        }
        let _ = child.wait();
        if completed {
            break;
        }
    }
    assert!(killed > 0, "fault injection must land at least one SIGKILL");
    assert!(journal_entries(&dir) > 0, "killed runs must leave progress");

    let resumed = run_campaign(&["--checkpoint", &dir_s, "--resume"]);
    assert_eq!(
        reference.stdout, resumed.stdout,
        "resumed campaign output must be byte-identical to uninterrupted"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("checkpoint: dir="),
        "resume must report journal stats:\n{stderr}"
    );

    // A second resume against the now-complete journal re-simulates
    // nothing (resumed == groups, executed == 0) and still matches.
    let again = run_campaign(&["--checkpoint", &dir_s, "--resume"]);
    assert_eq!(reference.stdout, again.stdout);
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(
        stderr.contains("executed=0") && stderr.contains("skipped=0"),
        "complete journal must fully satisfy the plan:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kernel wrapper counting functional executions across instances
/// (same shape as the streaming_equivalence counting harness).
struct CountingKernel {
    inner: Box<dyn Kernel>,
    runs: Arc<AtomicUsize>,
}

struct CountingRunnable {
    inner: Box<dyn Runnable>,
    runs: Arc<AtomicUsize>,
}

impl Kernel for CountingKernel {
    fn meta(&self) -> KernelMeta {
        self.inner.meta()
    }
    fn instantiate(&self, scale: Scale, seed: u64) -> Box<dyn Runnable> {
        Box::new(CountingRunnable {
            inner: self.inner.instantiate(scale, seed),
            runs: self.runs.clone(),
        })
    }
}

impl Runnable for CountingRunnable {
    fn run(&mut self, imp: Impl, w: Width) {
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.inner.run(imp, w);
    }
    fn output(&self) -> Vec<f64> {
        self.inner.output()
    }
    fn work_ops(&self) -> u64 {
        self.inner.work_ops()
    }
}

/// The zero-re-execution guarantee, counted directly: resuming over a
/// partially filled journal performs exactly one functional execution
/// per *remaining* group — completed groups cost zero — and the
/// resumed measurements equal a fresh serial campaign's exactly
/// (full-struct equality: histograms, timing, energy, floats bitwise).
#[test]
fn resume_reexecutes_nothing_and_matches_serial_bitwise() {
    let runs = Arc::new(AtomicUsize::new(0));
    let kernels: Vec<Box<dyn Kernel>> = swan::suite()
        .into_iter()
        .take(3)
        .map(|inner| {
            Box::new(CountingKernel {
                inner,
                runs: runs.clone(),
            }) as Box<dyn Kernel>
        })
        .collect();
    let plan = swan_core::plan(&kernels, Scale::test(), SEED);
    let total_groups: usize = plan
        .iter()
        .map(|sc| sc.stream_id())
        .collect::<std::collections::HashSet<_>>()
        .len();

    let dir = test_dir("counting");
    let journal = CampaignJournal::open(&dir, &kernels, Scale::test(), SEED).expect("open journal");

    // Phase 1: one worker's disjoint half fills part of the journal.
    let half = swan_core::try_execute_plan_checkpointed(
        &kernels,
        &plan,
        2,
        None,
        &journal,
        Some((0, 2)),
        |_| {},
    );
    assert!(half.failures.is_empty());
    assert!(half.executed_groups > 0 && half.skipped_groups > 0);
    assert_eq!(half.executed_groups + half.skipped_groups, total_groups);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        half.executed_groups,
        "one functional execution per executed group"
    );

    // Phase 2: full resume — only the other shard's groups execute.
    let full =
        swan_core::try_execute_plan_checkpointed(&kernels, &plan, 2, None, &journal, None, |_| {});
    assert!(full.failures.is_empty());
    assert_eq!(full.resumed_groups, half.executed_groups);
    assert_eq!(full.executed_groups, half.skipped_groups);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        total_groups,
        "across both runs every group executes exactly once: \
         resumed groups cost zero functional re-executions"
    );

    // Phase 3: the journal now satisfies the whole plan for free.
    let replay =
        swan_core::try_execute_plan_checkpointed(&kernels, &plan, 2, None, &journal, None, |_| {});
    assert_eq!(replay.resumed_groups, total_groups);
    assert_eq!(replay.executed_groups, 0);
    assert_eq!(runs.load(Ordering::SeqCst), total_groups, "still zero");

    let serial = swan_core::execute_plan(&kernels, &plan, 1, |_| {});
    for ((sc, got), want) in plan.iter().zip(&replay.measurements).zip(&serial) {
        assert_eq!(
            got.as_ref(),
            Some(want),
            "{}: journaled measurement must equal fresh serial bitwise",
            sc.id()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
