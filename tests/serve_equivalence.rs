//! Served queries must be indistinguishable from batch runs: every
//! row `swan-serve` streams back is byte-identical to what
//! `swan-report --only` prints for the same filter — cold cache, warm
//! cache, and under concurrent duplicate queries — and overlapping
//! requests deduplicate to exactly one functional execution per
//! scenario group (counted directly with a counting kernel, which a
//! subprocess boundary cannot observe).

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use swan::prelude::*;
use swan_core::Runnable;
use swan_serve::{Server, ServerConfig};

const SEED: u64 = 7;

/// The equivalence subset: a two-clause union, so the server's
/// `;`-spec exercises the same filter union two `--only` flags form.
const CLAUSE_A: &str = "lib=ZL,impl=neon";
const CLAUSE_B: &str = "lib=SK,impl=neon";

fn scale_arg() -> String {
    format!("{}", Scale::test().0)
}

/// Batch reference: `swan-report --only` rows (header and rule
/// stripped), the bytes every served answer must reproduce.
fn batch_rows() -> Vec<String> {
    let out = Command::new(env!("CARGO_BIN_EXE_swan-report"))
        .args(["--scale", &scale_arg(), "--seed", "7", "--threads", "2"])
        .args(["--only", CLAUSE_A, "--only", CLAUSE_B])
        .output()
        .expect("spawn swan-report");
    assert!(
        out.status.success(),
        "batch reference failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 batch output");
    stdout.lines().skip(2).map(str::to_owned).collect()
}

struct ServeSession {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ServeSession {
    fn spawn() -> ServeSession {
        let mut child = Command::new(env!("CARGO_BIN_EXE_swan-serve"))
            .args(["--scale", &scale_arg(), "--seed", "7", "--workers", "2"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn swan-serve");
        let stdin = child.stdin.take().expect("serve stdin");
        let stdout = BufReader::new(child.stdout.take().expect("serve stdout"));
        ServeSession {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
    }

    /// Read response lines until `<id> end ...`, returning every line
    /// of the query's response (its `end` line last). Lines belonging
    /// to other in-flight queries are passed through to `spill`.
    fn read_until_end(&mut self, id: &str, spill: &mut Vec<String>) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.stdout.read_line(&mut line).expect("read response");
            assert!(n > 0, "server closed stream before `{id} end`");
            let line = line.trim_end_matches('\n').to_string();
            if let Some(rest) = line.strip_prefix(&format!("{id} ")) {
                let is_end = rest.starts_with("end ");
                assert!(!rest.starts_with("error"), "query {id} failed: {line}");
                lines.push(line);
                if is_end {
                    return lines;
                }
            } else {
                spill.push(line);
            }
        }
    }

    fn quit(mut self) {
        self.send("quit");
        drop(self.stdin);
        let mut rest = String::new();
        use std::io::Read;
        self.stdout.read_to_string(&mut rest).expect("drain output");
        assert!(
            rest.lines().any(|l| l.starts_with("serve: requests=")),
            "session must end with a serve: stats line, got:\n{rest}"
        );
        let status = self.child.wait().expect("wait serve");
        assert!(status.success(), "swan-serve exited with {status}");
    }
}

/// `"<id> row <bytes>"` → `<bytes>`, dropping non-row lines.
fn row_bytes(id: &str, lines: &[String]) -> Vec<String> {
    let prefix = format!("{id} row ");
    lines
        .iter()
        .filter_map(|l| l.strip_prefix(&prefix))
        .map(str::to_owned)
        .collect()
}

/// `cache=A shared=B fresh=C ...` → the named field of an `end` line.
fn end_field(end_line: &str, name: &str) -> usize {
    end_line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name}= in `{end_line}`"))
        .parse()
        .unwrap_or_else(|_| panic!("bad {name}= in `{end_line}`"))
}

/// Cold-cache then warm-cache queries over the served pipe must both
/// reproduce the batch rows byte for byte, and the warm pass must be
/// answered entirely from the result cache (fresh=0).
#[test]
fn served_rows_byte_identical_to_batch_cold_and_warm() {
    let reference = batch_rows();
    assert!(!reference.is_empty(), "batch reference must print rows");

    let mut session = ServeSession::spawn();
    let mut spill = Vec::new();
    session.send(&format!("cold|{CLAUSE_A};{CLAUSE_B}"));
    let cold = session.read_until_end("cold", &mut spill);
    session.send(&format!("warm|{CLAUSE_A};{CLAUSE_B}"));
    let warm = session.read_until_end("warm", &mut spill);
    session.quit();
    assert!(spill.is_empty(), "unexpected interleaved lines: {spill:?}");

    assert_eq!(
        row_bytes("cold", &cold),
        reference,
        "cold served rows must be byte-identical to the batch run"
    );
    assert_eq!(
        row_bytes("warm", &warm),
        reference,
        "warm served rows must be byte-identical to the batch run"
    );

    let cold_end = cold.last().expect("cold end line");
    let warm_end = warm.last().expect("warm end line");
    let groups = end_field(cold_end, "groups");
    assert!(groups > 0);
    assert_eq!(end_field(cold_end, "fresh"), groups, "cold run executes");
    assert_eq!(end_field(warm_end, "cache"), groups, "warm run is cached");
    assert_eq!(end_field(warm_end, "fresh"), 0, "warm run executes nothing");
    assert_eq!(end_field(cold_end, "failures"), 0);
    assert_eq!(end_field(warm_end, "failures"), 0);
}

/// N identical queries issued back to back on one session: every one
/// must stream the byte-identical batch rows, and across all of them
/// each scenario group is *enqueued for execution* exactly once — the
/// rest are answered from the cache or by joining the in-flight run.
#[test]
fn concurrent_duplicate_queries_share_one_execution() {
    const DUPES: usize = 4;
    let reference = batch_rows();

    let mut session = ServeSession::spawn();
    for i in 0..DUPES {
        session.send(&format!("d{i}|{CLAUSE_A};{CLAUSE_B}"));
    }
    let mut per_query: Vec<Vec<String>> = (0..DUPES).map(|_| Vec::new()).collect();
    let mut spill: Vec<String> = Vec::new();
    for i in 0..DUPES {
        // Claim lines spilled while reading earlier ids, then read on.
        let id = format!("d{i}");
        let (mine, rest): (Vec<String>, Vec<String>) = spill
            .drain(..)
            .partition(|l| l.starts_with(&format!("{id} ")));
        per_query[i] = mine;
        spill = rest;
        if per_query[i]
            .last()
            .is_none_or(|l| !l.starts_with(&format!("{id} end ")))
        {
            per_query[i].extend(session.read_until_end(&id, &mut spill));
        }
    }
    session.quit();

    let mut fresh_total = 0;
    let mut groups = 0;
    for (i, lines) in per_query.iter().enumerate() {
        let id = format!("d{i}");
        assert_eq!(
            row_bytes(&id, lines),
            reference,
            "duplicate query {id} must stream the batch rows byte-identically"
        );
        let end = lines.last().expect("end line");
        groups = end_field(end, "groups");
        fresh_total += end_field(end, "fresh");
        assert_eq!(end_field(end, "failures"), 0);
    }
    assert_eq!(
        fresh_total, groups,
        "across {DUPES} duplicate queries every group must be enqueued exactly once"
    );
}

/// A kernel wrapper counting functional executions across instances
/// (same shape as the checkpoint_resume counting harness).
struct CountingKernel {
    inner: Box<dyn Kernel>,
    runs: Arc<AtomicUsize>,
}

struct CountingRunnable {
    inner: Box<dyn Runnable>,
    runs: Arc<AtomicUsize>,
}

impl Kernel for CountingKernel {
    fn meta(&self) -> KernelMeta {
        self.inner.meta()
    }
    fn instantiate(&self, scale: Scale, seed: u64) -> Box<dyn Runnable> {
        Box::new(CountingRunnable {
            inner: self.inner.instantiate(scale, seed),
            runs: self.runs.clone(),
        })
    }
}

impl Runnable for CountingRunnable {
    fn run(&mut self, imp: Impl, w: Width) {
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.inner.run(imp, w);
    }
    fn output(&self) -> Vec<f64> {
        self.inner.output()
    }
    fn work_ops(&self) -> u64 {
        self.inner.work_ops()
    }
}

/// The dedup guarantee, counted directly: many threads querying the
/// same plan through one in-process [`Server`] cause exactly one
/// functional execution per scenario group, and every thread's
/// measurements equal a fresh serial campaign's bitwise.
#[test]
fn overlapping_queries_execute_each_group_once() {
    let runs = Arc::new(AtomicUsize::new(0));
    let kernels: Vec<Box<dyn Kernel>> = swan::suite()
        .into_iter()
        .take(2)
        .map(|inner| {
            Box::new(CountingKernel {
                inner,
                runs: runs.clone(),
            }) as Box<dyn Kernel>
        })
        .collect();

    // Serial batch reference over the same (plain) kernel subset: the
    // Measurement values every served reply must equal bitwise.
    let plain: Vec<Box<dyn Kernel>> = swan::suite().into_iter().take(2).collect();
    let plan = swan_core::plan(&plain, Scale::test(), SEED);
    let serial = swan_core::execute_plan_serial(&plain, &plan, |_| {});

    let server = Server::new(
        kernels,
        None,
        ServerConfig {
            scale: Scale::test(),
            seed: SEED,
            workers: 4,
            ..ServerConfig::default()
        },
    );
    let total_groups = server.total_groups();
    assert!(total_groups > 1, "subset must span several groups");

    // Empty filter list = the full plan (the `*` query): maximal
    // overlap between the duplicate requests.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(|| server.query(&[]).expect("query")))
            .collect();
        for handle in handles {
            let reply = handle.join().expect("query thread");
            assert_eq!(reply.stats.failures, 0);
            assert_eq!(reply.plan.len(), plan.len());
            for ((sc, got), want) in reply.plan.iter().zip(&reply.measurements).zip(&serial) {
                assert_eq!(
                    got.as_ref(),
                    Some(want),
                    "{}: served measurement must equal fresh serial bitwise",
                    sc.id()
                );
            }
        }
    });

    assert_eq!(
        runs.load(Ordering::SeqCst),
        total_groups,
        "6 overlapping full-plan queries must cost exactly one functional \
         execution per group"
    );
}

/// Protocol-level errors: a malformed filter and a no-match filter
/// both answer with an `error` line (and never crash the session).
#[test]
fn malformed_and_empty_queries_answer_with_errors() {
    let kernels: Vec<Box<dyn Kernel>> = swan::suite().into_iter().take(1).collect();
    let server = Server::new(
        kernels,
        None,
        ServerConfig {
            scale: Scale::test(),
            seed: SEED,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let input = "bad|cpu=prime\nnone|kernel=no_such_kernel\nstats\nquit\n";
    let mut out = Vec::new();
    server
        .serve_lines(std::io::Cursor::new(input), &mut out)
        .expect("serve session");
    let text = String::from_utf8(out).expect("utf8 output");
    assert!(
        text.lines().any(|l| l.starts_with("bad error ")),
        "malformed filter must answer with an error line:\n{text}"
    );
    assert!(
        text.lines().any(|l| l.starts_with("none error ")),
        "no-match filter must answer with an error line:\n{text}"
    );
    assert_eq!(
        text.lines()
            .filter(|l| l.starts_with("serve: requests="))
            .count(),
        2,
        "one stats line for the `stats` command, one at session end:\n{text}"
    );
}
