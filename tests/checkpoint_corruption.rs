//! Checkpoint-journal corruption recovery: a damaged journal must
//! never change campaign results — only cost a re-simulation.
//!
//! Mirrors `tracestore_corruption.rs`: each scenario damages committed
//! entries a different way (truncated entry, flipped digest byte,
//! stale format version, garbage file) and asserts the same three
//! facts — the damage is detected on resume (before any measurement is
//! trusted), the entry is deleted and counted (`discarded`, alongside
//! the stderr log line), and the campaign falls back to re-simulation
//! with results bit-identical to the uncorrupted run, healing the
//! journal in place.

use std::fs;
use std::path::PathBuf;
use swan::prelude::*;
use swan_core::{plan, CampaignJournal, Measurement};

const SEED: u64 = 7;

fn journal_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("swan-ckpt-corruption-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn entry_paths(journal: &CampaignJournal) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(journal.dir())
        .expect("journal dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("swcp"))
        .collect();
    out.sort();
    out
}

fn assert_bit_identical(a: &[Measurement], b: &[Measurement], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: measurement count");
    for (x, y) in a.iter().zip(b) {
        // Full-struct equality: histograms, timing, cache statistics,
        // power/energy floats — all bitwise.
        assert_eq!(x, y, "{what}: measurements must be bit-identical");
    }
}

/// Run one corruption scenario: populate a journal, damage every entry
/// with `corrupt`, resume, and require detection + re-simulation +
/// bit-identical results + a healed journal.
fn corruption_scenario(tag: &str, corrupt: impl Fn(&PathBuf)) {
    let kernels: Vec<Box<dyn Kernel>> = swan::suite().into_iter().take(2).collect();
    let dir = journal_dir(tag);
    let matrix = plan(&kernels, Scale::test(), SEED);

    let journal = CampaignJournal::open(&dir, &kernels, Scale::test(), SEED).expect("open journal");
    let (cold, populated) =
        swan_core::execute_plan_checkpointed(&kernels, &matrix, 1, None, &journal, |_| {});
    assert_eq!(populated.resumed_groups, 0);
    assert!(
        populated.executed_groups > 0,
        "cold run must journal groups"
    );
    let entries = entry_paths(&journal);
    assert_eq!(entries.len(), populated.executed_groups);

    for path in &entries {
        corrupt(path);
    }

    // Fresh handle (fresh counters), same directory — like a new
    // process resuming after the damage happened.
    let journal = CampaignJournal::open(&dir, &kernels, Scale::test(), SEED).expect("reopen");
    let (recovered, run) =
        swan_core::execute_plan_checkpointed(&kernels, &matrix, 1, None, &journal, |_| {});
    assert_eq!(
        journal.stats().discarded,
        entries.len() as u64,
        "{tag}: every damaged entry must be detected on resume and counted"
    );
    assert_eq!(
        run.resumed_groups, 0,
        "{tag}: no damaged entry may be served as resumed progress"
    );
    assert_eq!(
        run.executed_groups,
        entries.len(),
        "{tag}: every damaged group must be re-simulated"
    );
    assert_bit_identical(&cold, &recovered, tag);

    // The re-simulation healed the journal in place: a third run
    // resumes everything and is still bit-identical.
    let journal = CampaignJournal::open(&dir, &kernels, Scale::test(), SEED).expect("reopen");
    let (warm, run) =
        swan_core::execute_plan_checkpointed(&kernels, &matrix, 1, None, &journal, |_| {});
    assert_eq!(journal.stats().discarded, 0, "{tag}: healed");
    assert_eq!(run.resumed_groups, entries.len(), "{tag}: all resumed");
    assert_eq!(run.executed_groups, 0, "{tag}: nothing re-simulated");
    assert_bit_identical(&cold, &warm, tag);

    let _ = fs::remove_dir_all(&dir);
}

/// An entry truncated mid-payload is detected on resume.
#[test]
fn truncated_entry_falls_back_to_resimulation() {
    corruption_scenario("truncate", |path| {
        let bytes = fs::read(path).expect("read entry");
        assert!(bytes.len() > 64, "entry large enough to truncate");
        fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    });
}

/// A single flipped byte in the trailing digest is detected on resume
/// (the digest covers every preceding byte of the entry).
#[test]
fn flipped_digest_byte_falls_back_to_resimulation() {
    corruption_scenario("digest-flip", |path| {
        let mut bytes = fs::read(path).expect("read entry");
        let last = bytes.len() - 1; // inside the trailing digest field
        bytes[last] ^= 0x01;
        fs::write(path, bytes).expect("rewrite entry");
    });
}

/// A payload bit flip (inside a serialized measurement, not the
/// trailer) is equally fatal: the digest mismatch is detected before
/// a single field is trusted.
#[test]
fn flipped_payload_byte_falls_back_to_resimulation() {
    corruption_scenario("payload-flip", |path| {
        let mut bytes = fs::read(path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        fs::write(path, bytes).expect("rewrite entry");
    });
}

/// An entry written by a different (stale) checkpoint format version
/// is refused outright — even with a valid digest.
#[test]
fn stale_format_version_falls_back_to_resimulation() {
    corruption_scenario("stale-version", |path| {
        let bytes = fs::read(path).expect("read entry");
        // Bytes 4..8 hold the checkpoint format version (little
        // endian). Rewrite it and re-seal the digest so only the
        // version check can reject the entry.
        let mut payload = bytes[..bytes.len() - 8].to_vec();
        payload[4] = 0xEE;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &payload {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        payload.extend_from_slice(&hash.to_le_bytes());
        fs::write(path, payload).expect("rewrite entry");
    });
}

/// A file that is not an entry at all (wrong magic, arbitrary bytes)
/// at an entry path is refused and replaced like any other corruption.
#[test]
fn garbage_entry_falls_back_to_resimulation() {
    corruption_scenario("garbage", |path| {
        fs::write(path, b"definitely not a checkpoint").expect("rewrite entry");
    });
}
