//! Cross-crate integration tests: every kernel verifies functionally
//! across the full width range, and basic suite-level invariants hold.

use swan::prelude::*;

#[test]
fn every_kernel_verifies_at_two_seeds() {
    for kernel in swan::suite() {
        for seed in [1u64, 987654321] {
            verify_kernel(kernel.as_ref(), Scale::test(), seed)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.meta().id()));
        }
    }
}

#[test]
fn neon_reduces_instructions_for_every_kernel() {
    let prime = CoreConfig::prime();
    for kernel in swan::suite() {
        let s = measure(
            kernel.as_ref(),
            Impl::Scalar,
            Width::W128,
            &prime,
            Scale::test(),
            5,
        );
        let v = measure(
            kernel.as_ref(),
            Impl::Neon,
            Width::W128,
            &prime,
            Scale::test(),
            5,
        );
        let red = s.trace.total() as f64 / v.trace.total() as f64;
        assert!(
            red > 1.0,
            "{}: instruction reduction {red:.2} must exceed 1",
            kernel.meta().id()
        );
        // Vector ISA can encode at most VRE-ish more work per instr;
        // crypto instructions encode whole rounds (AESE = SubBytes +
        // ShiftRows + AddRoundKey of a block, SHA256H = four rounds),
        // so they get a wider but still bounded allowance.
        let has_crypto = v.trace.class_count(swan_simd::Class::VCrypto) > 0;
        let vre = kernel.meta().vre(Width::W128) as f64;
        let bound = if has_crypto { 80.0 } else { 4.0 * vre.max(4.0) };
        assert!(
            red < bound,
            "{}: reduction {red:.2} implausibly high",
            kernel.meta().id()
        );
    }
}

#[test]
fn neon_is_faster_than_scalar_for_nearly_every_kernel() {
    let prime = CoreConfig::prime();
    let mut slower = Vec::new();
    for kernel in swan::suite() {
        let s = measure(
            kernel.as_ref(),
            Impl::Scalar,
            Width::W128,
            &prime,
            Scale::test(),
            5,
        );
        let v = measure(
            kernel.as_ref(),
            Impl::Neon,
            Width::W128,
            &prime,
            Scale::test(),
            5,
        );
        if v.seconds() >= s.seconds() {
            slower.push(kernel.meta().id());
        }
    }
    // The paper's slowest Neon kernels still win; allow at most one
    // borderline case at the tiny test scale.
    assert!(
        slower.len() <= 1,
        "kernels where Neon lost to scalar: {slower:?}"
    );
}

#[test]
fn ipc_never_exceeds_commit_width() {
    let prime = CoreConfig::prime();
    for kernel in swan::suite().iter().take(12) {
        for imp in [Impl::Scalar, Impl::Neon] {
            let m = measure(kernel.as_ref(), imp, Width::W128, &prime, Scale::test(), 3);
            assert!(
                m.sim.ipc() <= prime.commit_width as f64 + 1e-9,
                "{}: IPC {}",
                kernel.meta().id(),
                m.sim.ipc()
            );
        }
    }
}

#[test]
fn silver_core_is_slower_than_prime() {
    let prime = CoreConfig::prime();
    let silver = CoreConfig::silver();
    for kernel in swan::suite().iter().take(6) {
        let p = measure(
            kernel.as_ref(),
            Impl::Neon,
            Width::W128,
            &prime,
            Scale::test(),
            3,
        );
        let s = measure(
            kernel.as_ref(),
            Impl::Neon,
            Width::W128,
            &silver,
            Scale::test(),
            3,
        );
        assert!(
            s.seconds() > p.seconds(),
            "{}: silver {} vs prime {}",
            kernel.meta().id(),
            s.seconds(),
            p.seconds()
        );
    }
}
