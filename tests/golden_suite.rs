//! Golden-suite regression gate.
//!
//! The address-virtualized tracer promises that a given scenario —
//! (kernel, implementation, width, core, scale, seed) — produces a
//! bit-identical dynamic instruction stream, including every memory
//! address, on every run, every process, and every machine. These
//! tests hold the *full scenario matrix* (per-width and per-core, not
//! just Prime at 128-bit) to that promise and pin the results to the
//! committed `tests/golden/suite.json` baseline, so any change to
//! kernels, tracer, or timing model shows up as a reviewable diff
//! (regenerate with `swan-report --write-golden tests/golden/suite.json`).

use swan_core::{capture, golden, plan, Impl, Scale, TraceStore};
use swan_simd::Width;

/// The committed baseline's parameters: quick scale, seed 42.
const GOLDEN_SEED: u64 = 42;

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/suite.json")
}

/// The full scenario campaign, run twice in-process — once against a
/// *cold* persistent trace store (every group recorded to disk) and
/// once against the now-*warm* store (every group replayed from disk,
/// zero functional executions) — must be byte-identical: trace
/// digests (covering every instruction field and address) and
/// cycle/cache statistics alike, with every memory reference resolved
/// through a registered buffer. Both must match the committed
/// baseline exactly, one entry per planned scenario — and the
/// baseline was generated with *no* store, so this pins the cardinal
/// invariant that cold-store, warm-store, and store-disabled
/// campaigns agree on all 485 scenarios.
#[test]
fn golden_suite_reproduces_and_matches_baseline() {
    let kernels = swan_kernels::all_kernels();
    let scale = Scale::quick();

    let dir = std::env::temp_dir().join(format!("swan-golden-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir, &kernels).expect("open trace store");

    let first = golden::collect_with(&kernels, scale, GOLDEN_SEED, 1, Some(&store), |_| {});
    let cold = store.stats();
    assert_eq!(cold.hits, 0, "first campaign runs against a cold store");
    assert!(cold.inserts > 0 && cold.inserts == cold.misses);

    let second = golden::collect_with(&kernels, scale, GOLDEN_SEED, 1, Some(&store), |_| {});
    let warm = store.stats();
    assert_eq!(
        warm.misses, cold.misses,
        "second campaign must be all hits (no new misses)"
    );
    assert_eq!(warm.hits, cold.inserts, "one hit per stored group");
    assert_eq!(warm.corrupt_replaced, 0);
    assert_eq!(
        first, second,
        "cold-store and warm-store campaigns must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // The baseline covers the whole plan, keyed by scenario id: every
    // kernel × {Scalar, Auto, Neon} × its widths × its cores.
    let matrix = plan(&kernels, scale, GOLDEN_SEED);
    assert_eq!(first.len(), matrix.len(), "one entry per planned scenario");
    for (e, sc) in first.iter().zip(&matrix) {
        assert_eq!(e.id, sc.id(), "entries follow canonical plan order");
    }
    for e in &first {
        assert_eq!(
            e.fallback_refs, 0,
            "{}: every traced access must hit a registered buffer \
             (a fallback means the kernel forgot a with_buffers! entry)",
            e.id
        );
    }

    let actual = golden::to_json(scale, GOLDEN_SEED, &first);
    let expected = std::fs::read_to_string(baseline_path())
        .expect("committed baseline tests/golden/suite.json");
    if let Some(d) = golden::diff(&expected, &actual, 40) {
        panic!(
            "campaign drifted from the committed golden baseline:\n{d}\
             regenerate with `swan-report --write-golden tests/golden/suite.json` \
             if the change is intended"
        );
    }
}

/// The stronger form of trace byte-identity for a representative
/// sample: the *complete materialized* `TraceData` — every
/// `TraceInstr` including virtualized addresses — is equal across two
/// fresh instantiations, which is exactly what host-layout
/// independence means (the second instance's buffers live at
/// different host addresses).
#[test]
fn materialized_traces_are_instantiation_independent() {
    let kernels = swan_kernels::all_kernels();
    for id in ["ZL.crc32", "BS.aes128_ctr", "XP.gemm_f32", "PF.fft_forward"] {
        let kernel = kernels
            .iter()
            .find(|k| k.meta().id() == id)
            .expect("representative kernel");
        for imp in [Impl::Scalar, Impl::Neon] {
            let (a, _) = capture(kernel.as_ref(), imp, Width::W128, Scale::test(), 9);
            let (b, _) = capture(kernel.as_ref(), imp, Width::W128, Scale::test(), 9);
            assert_eq!(a.by_op, b.by_op, "{id} {imp:?}");
            assert_eq!(
                a.instrs, b.instrs,
                "{id} {imp:?}: traces from two instantiations must be \
                 bit-identical (addresses included)"
            );
        }
    }
}
