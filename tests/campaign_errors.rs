//! `campaign::SuiteRunner` error paths: a panicking kernel in one
//! shard must not poison sibling shards' results.

use swan_core::{Impl, Kernel, KernelMeta, Runnable, Scale, SuiteRunner};
use swan_simd::Width;

/// A kernel whose measurement always panics — optionally only after
/// emitting part of a trace, so the tracer session is mid-flight (the
/// worst case for thread-local state) when the unwind happens.
#[derive(Debug)]
struct Exploding {
    name: &'static str,
    after_some_trace: bool,
}

struct ExplodingRun {
    after_some_trace: bool,
}

impl Runnable for ExplodingRun {
    fn run(&mut self, _imp: Impl, w: Width) {
        if self.after_some_trace {
            let v = swan_simd::Vreg::<u8>::splat(w, 1);
            let _ = v.add(v);
        }
        panic!("kernel exploded by design");
    }

    fn output(&self) -> Vec<f64> {
        Vec::new()
    }
}

impl Kernel for Exploding {
    fn meta(&self) -> KernelMeta {
        KernelMeta {
            name: self.name,
            library: swan_core::Library::ZL,
            precision_bits: 8,
            is_float: false,
            auto: swan_core::AutoOutcome::SameAsScalar,
            obstacles: &[],
            patterns: &[],
            tolerance: 0.0,
            excluded_from_eval: true,
        }
    }

    fn instantiate(&self, _scale: Scale, _seed: u64) -> Box<dyn Runnable> {
        Box::new(ExplodingRun {
            after_some_trace: self.after_some_trace,
        })
    }
}

fn mixed_inventory() -> Vec<Box<dyn Kernel>> {
    // Real kernels interleaved with exploding ones, so failures land
    // in the middle of shards, not just at the edges.
    let mut v: Vec<Box<dyn Kernel>> = Vec::new();
    let mut real = swan_kernels::zl::kernels()
        .into_iter()
        .chain(swan_kernels::or::kernels());
    v.push(real.next().unwrap());
    v.push(Box::new(Exploding {
        name: "exploding_early",
        after_some_trace: false,
    }));
    v.extend(real.by_ref().take(2));
    v.push(Box::new(Exploding {
        name: "exploding_mid_trace",
        after_some_trace: true,
    }));
    v.extend(real);
    v
}

#[test]
fn panicking_kernel_does_not_poison_sibling_shards() {
    let kernels = mixed_inventory();
    let good: Vec<String> = kernels
        .iter()
        .map(|k| k.meta().id())
        .filter(|id| !id.contains("exploding"))
        .collect();

    for threads in [1, 3] {
        let (suite, failures) = SuiteRunner::new(Scale::test(), 7)
            .threads(threads)
            .try_run(&kernels, |_| {});
        let measured: Vec<String> = suite.kernels.iter().map(|k| k.meta.id()).collect();
        assert_eq!(
            measured, good,
            "({threads} threads) every healthy kernel must be fully \
             measured, in suite order"
        );
        let mut failed: Vec<&str> = failures.iter().map(|f| f.id.as_str()).collect();
        failed.sort_unstable();
        assert_eq!(failed, ["ZL.exploding_early", "ZL.exploding_mid_trace"]);
        for f in &failures {
            assert!(
                f.message.contains("exploded by design"),
                "panic payload must be preserved: {:?}",
                f.message
            );
        }
        // Sibling results are not just present but correct: they match
        // a clean campaign of only the healthy kernels bit for bit.
        let clean = SuiteRunner::new(Scale::test(), 7)
            .threads(threads)
            .run(&suite_only(&good), |_| {});
        for (a, b) in suite.kernels.iter().zip(clean.kernels.iter()) {
            assert_eq!(a.meta.id(), b.meta.id());
            assert_eq!(a.neon.sim, b.neon.sim, "{}", a.meta.id());
            assert_eq!(a.scalar.trace.by_op, b.scalar.trace.by_op);
        }
    }
}

fn suite_only(ids: &[String]) -> Vec<Box<dyn Kernel>> {
    swan_kernels::all_kernels()
        .into_iter()
        .filter(|k| ids.contains(&k.meta().id()))
        .collect()
}

#[test]
fn run_panics_with_failure_summary() {
    let kernels = mixed_inventory();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        SuiteRunner::new(Scale::test(), 7)
            .threads(2)
            .run(&kernels, |_| {});
    }))
    .expect_err("run() must surface kernel failures");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("exploding_early") && msg.contains("exploding_mid_trace"),
        "aggregate panic must name every failed kernel: {msg}"
    );
}

/// After a kernel panics mid-trace on a worker thread, the
/// thread-local tracer must be re-armed: the same thread measuring
/// the next kernel produces exactly the results a fresh thread would.
#[test]
fn tracer_rearms_after_mid_trace_panic_on_same_thread() {
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(Exploding {
            name: "exploding_mid_trace",
            after_some_trace: true,
        }),
        swan_kernels::zl::kernels().remove(0),
    ];
    // Single-threaded: the healthy kernel measures on the thread the
    // panic unwound through.
    let (suite, failures) = SuiteRunner::new(Scale::test(), 7).try_run(&kernels, |_| {});
    assert_eq!(failures.len(), 1);
    assert_eq!(suite.kernels.len(), 1);
    let clean = SuiteRunner::new(Scale::test(), 7)
        .try_run(&kernels[1..], |_| {})
        .0;
    assert_eq!(
        suite.kernels[0].neon.sim, clean.kernels[0].neon.sim,
        "post-panic measurement must equal a clean-thread measurement"
    );
}
