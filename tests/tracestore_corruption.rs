//! Trace-store corruption recovery: a damaged store must never change
//! campaign results — only cost a re-record.
//!
//! Each scenario damages committed entries a different way (truncated
//! chunk, flipped digest byte, stale format version, garbage file) and
//! asserts the same three facts: the damage is detected *on open*
//! (before a single record reaches a model), the entry is deleted and
//! counted (`corrupt_replaced`, alongside the stderr log line), and
//! the campaign falls back to record-and-replace with results
//! bit-identical to a cold store — which `streaming_equivalence` and
//! `golden_suite` in turn pin to the store-disabled flow.

use std::fs;
use std::path::PathBuf;
use swan::prelude::*;
use swan_core::{execute_plan_with, plan, Measurement, TraceStore};

const SEED: u64 = 7;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swan-corruption-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn entry_paths(store: &TraceStore) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(store.dir())
        .expect("store dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("swst"))
        .collect();
    out.sort();
    out
}

fn assert_bit_identical(a: &[Measurement], b: &[Measurement], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: measurement count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.sim, y.sim, "{what}: SimResult must be bit-identical");
        assert_eq!(x.trace.by_op, y.trace.by_op, "{what}: histograms");
        assert_eq!(x.work_ops, y.work_ops, "{what}: work ops");
    }
}

/// Run one corruption scenario: populate a store, damage its entries
/// with `corrupt`, re-run the campaign, and require detection +
/// replacement + bit-identical results.
fn corruption_scenario(tag: &str, corrupt: impl Fn(&PathBuf)) {
    let kernels: Vec<Box<dyn Kernel>> = swan::suite().into_iter().take(2).collect();
    let dir = store_dir(tag);
    let store = TraceStore::open(&dir, &kernels)
        .expect("open store")
        // Small chunks so even test-scale streams span several.
        .chunk_budget(512);
    let matrix = plan(&kernels, Scale::test(), SEED);

    let cold = execute_plan_with(&kernels, &matrix, 1, Some(&store), |_| {});
    let populated = store.stats();
    assert!(populated.inserts > 0, "cold run must populate the store");
    let entries = entry_paths(&store);
    assert_eq!(entries.len() as u64, populated.inserts);

    for path in &entries {
        corrupt(path);
    }

    let recovered = execute_plan_with(&kernels, &matrix, 1, Some(&store), |_| {});
    let after = store.stats();
    assert_eq!(
        after.corrupt_replaced,
        entries.len() as u64,
        "{tag}: every damaged entry must be detected on open and counted"
    );
    assert_eq!(
        after.hits, populated.hits,
        "{tag}: no damaged entry may be served as a hit"
    );
    assert_eq!(
        after.inserts,
        populated.inserts * 2,
        "{tag}: every damaged entry must be re-recorded (record-and-replace)"
    );
    assert_bit_identical(&cold, &recovered, tag);

    // The replacements are healthy: a third run is all hits and still
    // bit-identical.
    let warm = execute_plan_with(&kernels, &matrix, 1, Some(&store), |_| {});
    let healed = store.stats();
    assert_eq!(
        healed.corrupt_replaced, after.corrupt_replaced,
        "{tag}: healed"
    );
    assert_eq!(
        healed.hits,
        after.hits + populated.inserts,
        "{tag}: all hits"
    );
    assert_bit_identical(&cold, &warm, tag);

    let _ = fs::remove_dir_all(&dir);
}

/// A chunk truncated mid-payload is detected on open.
#[test]
fn truncated_chunk_falls_back_to_rerecord() {
    corruption_scenario("truncate", |path| {
        let bytes = fs::read(path).expect("read entry");
        assert!(bytes.len() > 64, "entry large enough to truncate");
        fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    });
}

/// A single flipped byte in the trailing stream digest is detected on
/// open (the chunk digests cover every payload byte; the trailer
/// covers the totals and the running digest).
#[test]
fn flipped_digest_byte_falls_back_to_rerecord() {
    corruption_scenario("digest-flip", |path| {
        let mut bytes = fs::read(path).expect("read entry");
        let last = bytes.len() - 1; // inside the trailer's digest field
        bytes[last] ^= 0x01;
        fs::write(path, bytes).expect("rewrite entry");
    });
}

/// An entry written by a different (stale) store format version is
/// refused outright.
#[test]
fn stale_format_version_falls_back_to_rerecord() {
    corruption_scenario("stale-version", |path| {
        let mut bytes = fs::read(path).expect("read entry");
        // Bytes 4..8 hold the store format version (little endian).
        bytes[4] = 0xEE;
        fs::write(path, bytes).expect("rewrite entry");
    });
}

/// A file that is not an entry at all (wrong magic, arbitrary bytes)
/// is refused and replaced like any other corruption.
#[test]
fn garbage_entry_falls_back_to_rerecord() {
    corruption_scenario("garbage", |path| {
        fs::write(path, b"definitely not a trace").expect("rewrite entry");
    });
}
