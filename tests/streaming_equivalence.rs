//! Streaming/batch equivalence: the sink-based measurement pipeline
//! must produce bit-identical results to materialize-then-replay.
//!
//! The streaming runner executes one kernel instance twice (cache
//! warm-up pass + timed pass) instead of capturing a trace and
//! replaying it twice, so these tests pin down the two facts that make
//! that equivalent: (1) re-running an instance reproduces its dynamic
//! trace exactly (same buffers, same addresses, same control flow),
//! and (2) the incremental core model consumes a stream identically to
//! a batch replay.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use swan::prelude::*;
use swan_core::Runnable;
use swan_simd::trace::{stream_into, Mode, Session};
use swan_uarch::{MultiCore, SimResult};

const SEED: u64 = 7;

fn trace_of(inst: &mut dyn swan_core::Runnable, imp: Impl, w: Width) -> swan_simd::TraceData {
    let sess = Session::begin(Mode::Full);
    inst.run(imp, w);
    sess.finish()
}

/// (1) Re-running the same instance reproduces the dynamic trace
/// bit-for-bit — for every kernel and implementation in the suite,
/// and across *capture modes*: the first run is a batch capture
/// (`Mode::Full`, whose growing instruction `Vec` perturbs the
/// allocator mid-run) and the second streams into a sink through a
/// closure (different call stack, no materialization). Any traced
/// address that depends on a run-local temporary's location — stack
/// frame or heap chunk — fails here.
#[test]
fn every_kernel_rerun_reproduces_its_trace() {
    for kernel in swan::suite() {
        for imp in [Impl::Scalar, Impl::Auto, Impl::Neon] {
            let mut inst = kernel.instantiate(Scale::test(), SEED);
            let batch = trace_of(inst.as_mut(), imp, Width::W128);
            let (streamed, sink, ()) =
                stream_into(swan_simd::VecSink::default(), || inst.run(imp, Width::W128));
            assert_eq!(
                batch.by_op,
                streamed.by_op,
                "{} {imp:?}",
                kernel.meta().id()
            );
            assert_eq!(
                batch.instrs,
                sink.instrs,
                "{} {imp:?}: streamed rerun must replay the identical stream \
                 (a mismatch usually means a traced address depends on a \
                 run-local temporary — hoist the buffer into instance state)",
                kernel.meta().id()
            );
        }
    }
}

/// (2) Streaming a kernel into fan-out core models equals capturing
/// once and batch-replaying, bit for bit, across implementations,
/// widths, and core configurations.
#[test]
fn streaming_measurement_equals_batch_replay() {
    let kernels = swan::suite();
    // Includes the two kernels that needed scratch buffers hoisted
    // into instance state (upsample_h2v1, crc32) — regression guards
    // for address-stable reruns.
    let reps = [
        ("ZL", "adler32"),
        ("ZL", "crc32"),
        ("LJ", "rgb_to_ycbcr"),
        ("LJ", "upsample_h2v1"),
        ("XP", "gemm_f32"),
    ];
    let cfgs = [
        CoreConfig::prime(),
        CoreConfig::gold(),
        CoreConfig::silver(),
    ];
    for (lib, name) in reps {
        let kernel = kernels
            .iter()
            .find(|k| k.meta().library.info().symbol == lib && k.meta().name == name)
            .expect("representative kernel");
        for (imp, w) in [
            (Impl::Scalar, Width::W128),
            (Impl::Neon, Width::W128),
            (Impl::Neon, Width::W512),
        ] {
            let mut inst = kernel.instantiate(Scale::test(), SEED);

            // Batch reference: capture one run, warm + timed replay.
            let tr = trace_of(inst.as_mut(), imp, w);
            let batch: Vec<_> = cfgs.iter().map(|c| swan_uarch::simulate(&tr, c)).collect();

            // Streaming: two more executions of the same instance
            // drive all three models through the fan-out sink.
            let mut multi = MultiCore::new(&cfgs);
            multi.begin_warm();
            let (_, mut multi, ()) = stream_into(multi, || inst.run(imp, w));
            multi.begin_timed();
            let (data, mut multi, ()) = stream_into(multi, || inst.run(imp, w));
            let streamed = multi.finalize();

            assert_eq!(
                batch, streamed,
                "{lib}.{name} {imp:?}@{w}: streaming != batch"
            );
            assert_eq!(data.by_op, tr.by_op, "{lib}.{name} {imp:?}@{w}: histograms");
            assert!(data.instrs.is_empty(), "streaming must not materialize");
        }
    }
}

/// The public `measure` (streaming) agrees with the explicit batch
/// pipeline on histograms and instruction counts, and `measure_multi`
/// fans out to per-config results that match single-config calls'
/// mix-level data for every configuration.
#[test]
fn measure_multi_is_consistent_with_single_measures() {
    let kernels = swan::suite();
    let kernel = kernels
        .iter()
        .find(|k| k.meta().id() == "ZL.adler32")
        .expect("ZL.adler32");
    let cfgs = [
        CoreConfig::prime(),
        CoreConfig::gold(),
        CoreConfig::silver(),
    ];
    let multi = swan_core::measure_multi(
        kernel.as_ref(),
        Impl::Neon,
        Width::W128,
        &cfgs,
        Scale::test(),
        SEED,
    );
    assert_eq!(multi.len(), 3);
    // Prime and Gold share the microarchitecture: identical cycles,
    // different wall-clock (frequency) — exactly as in the batch flow.
    assert_eq!(multi[0].sim.cycles, multi[1].sim.cycles);
    assert!(multi[0].seconds() < multi[1].seconds());
    // Silver (in-order, narrow) must be slower in cycles.
    assert!(multi[2].sim.cycles > multi[0].sim.cycles);
    for m in &multi {
        assert_eq!(m.trace.total(), multi[0].trace.total());
        assert_eq!(m.sim.instrs, m.trace.total());
        assert!(
            m.trace.instrs.is_empty(),
            "measurements keep histograms only"
        );
    }

    let single = measure(
        kernel.as_ref(),
        Impl::Neon,
        Width::W128,
        &CoreConfig::prime(),
        Scale::test(),
        SEED,
    );
    assert_eq!(single.trace.by_op, multi[0].trace.by_op);
    assert_eq!(single.sim.instrs, multi[0].sim.instrs);
    assert_eq!(single.work_ops, multi[0].work_ops);
}

/// Suite level: the scenario-sharded campaign produces *bit-identical*
/// per-kernel results to the serial one, in the same order, for every
/// worker count. Buffer address virtualization makes the entire
/// measurement — timing and cache statistics included — independent of
/// which thread (and which host allocation) instantiated the kernel,
/// and scenario-group sharding keeps every scenario's measurement
/// independent of which worker (and alongside which siblings) ran it.
#[test]
fn sharded_campaign_matches_serial_run_suite() {
    let kernels: Vec<_> = swan::suite().into_iter().take(8).collect();
    let serial = swan_core::report::run_suite(&kernels, Scale::test(), SEED, |_| {});
    for threads in [1, 2, 7] {
        let sharded = swan_core::SuiteRunner::new(Scale::test(), SEED)
            .threads(threads)
            .run(&kernels, |_| {});
        assert_eq!(serial.kernels.len(), sharded.kernels.len());
        for (s, p) in serial.kernels.iter().zip(sharded.kernels.iter()) {
            assert_eq!(s.meta.id(), p.meta.id(), "kernel order must be stable");
            for (which, a, b) in [
                ("scalar", &s.scalar, &p.scalar),
                ("auto", &s.auto, &p.auto),
                ("neon", &s.neon, &p.neon),
                ("neon_gold", &s.neon_gold, &p.neon_gold),
                ("scalar_silver", &s.scalar_silver, &p.scalar_silver),
            ] {
                assert_eq!(
                    a.trace.by_op,
                    b.trace.by_op,
                    "{} {which} ({threads} threads)",
                    s.meta.id()
                );
                assert_eq!(a.work_ops, b.work_ops, "{} {which}", s.meta.id());
                assert_eq!(
                    a.sim,
                    b.sim,
                    "{} {which} ({threads} threads): virtualized addresses make \
                     sharded and serial measurements bit-identical",
                    s.meta.id()
                );
            }
            // The width and core sweeps of the Figure 5 representatives
            // ride the same scenario path; pin them too.
            assert_eq!(s.widths.is_some(), p.widths.is_some());
            if let (Some(sw), Some(pw)) = (&s.widths, &p.widths) {
                for (a, b) in sw.iter().zip(pw.iter()) {
                    assert_eq!(a.sim, b.sim, "{} widths", s.meta.id());
                }
            }
            if let (Some(ss), Some(ps)) = (&s.sweep, &p.sweep) {
                for (a, b) in ss.iter().zip(ps.iter()) {
                    assert_eq!(a.sim, b.sim, "{} sweep", s.meta.id());
                }
            }
        }
    }
}

/// A scenario's measurement depends only on the scenario itself, not
/// on where it sits in the plan: executing a *permuted* plan (and a
/// filtered subset of it) yields bit-identical per-scenario results,
/// scenario by scenario. This is what makes `--only` subsets and any
/// future sharding policy safe by construction.
#[test]
fn permuted_and_filtered_plans_are_scenario_bit_identical() {
    use std::collections::HashMap;
    let kernels: Vec<_> = swan::suite().into_iter().take(4).collect();
    let plan = swan_core::plan(&kernels, Scale::test(), SEED);
    let baseline = swan_core::execute_plan(&kernels, &plan, 1, |_| {});
    let by_id: HashMap<String, &swan_core::Measurement> = plan
        .iter()
        .zip(baseline.iter())
        .map(|(sc, m)| (sc.id(), m))
        .collect();

    // Deterministic permutation: reverse, which breaks up every
    // execution group's adjacency and inverts kernel order.
    let mut permuted = plan.clone();
    permuted.reverse();
    let results = swan_core::execute_plan(&kernels, &permuted, 2, |_| {});
    assert_eq!(results.len(), permuted.len());
    for (sc, m) in permuted.iter().zip(results.iter()) {
        let b = by_id[&sc.id()];
        assert_eq!(m.sim, b.sim, "{}: permuted plan must not change", sc.id());
        assert_eq!(m.trace.by_op, b.trace.by_op, "{}", sc.id());
        assert_eq!(m.work_ops, b.work_ops, "{}", sc.id());
    }

    // A filtered subset reuses the same path and reproduces the same
    // per-scenario numbers.
    let only = swan_core::ScenarioFilter::parse("impl=neon,width=128").unwrap();
    let subset = swan_core::filter_plan(&plan, &[only]);
    assert!(!subset.is_empty() && subset.len() < plan.len());
    let sub_results = swan_core::execute_plan(&kernels, &subset, 1, |_| {});
    for (sc, m) in subset.iter().zip(sub_results.iter()) {
        assert_eq!(m.sim, by_id[&sc.id()].sim, "{}: subset must match", sc.id());
    }
}

/// Differential proof of replay ≡ execute at campaign level: the
/// record-once/replay-many executor must produce *exact* `SimResult`
/// equality with a functional-execution reference (a fresh
/// materialized capture batch-replayed per scenario) — at thread
/// counts {1, 2, 7} and under a permuted plan.
#[test]
fn replayed_campaign_matches_functionally_executed_campaign() {
    let kernels: Vec<_> = swan::suite().into_iter().take(4).collect();
    let plan = swan_core::plan(&kernels, Scale::test(), SEED);

    // Reference: functionally execute every stream once more,
    // materialize the trace, and batch warm+timed simulate each
    // scenario's core from it — the paper's capture-then-replay flow
    // with no codec anywhere in the path.
    let mut captures: HashMap<String, swan_simd::TraceData> = HashMap::new();
    let mut reference: HashMap<String, SimResult> = HashMap::new();
    for sc in &plan {
        let tr = captures.entry(sc.stream_id()).or_insert_with(|| {
            let (tr, _) = swan_core::capture(
                kernels[sc.kernel].as_ref(),
                sc.imp,
                sc.width,
                sc.scale,
                sc.seed,
            );
            tr
        });
        reference.insert(sc.id(), swan_uarch::simulate(tr, &sc.core.config()));
    }

    for threads in [1, 2, 7] {
        let results = swan_core::execute_plan(&kernels, &plan, threads, |_| {});
        for (sc, m) in plan.iter().zip(&results) {
            assert_eq!(
                m.sim,
                reference[&sc.id()],
                "{} ({threads} threads): replayed recording must equal \
                 functional execution exactly",
                sc.id()
            );
        }
    }

    // The equality must also hold when the plan order is permuted
    // (groups broken up, kernels inverted).
    let mut permuted = plan.clone();
    permuted.reverse();
    let results = swan_core::execute_plan(&kernels, &permuted, 2, |_| {});
    for (sc, m) in permuted.iter().zip(&results) {
        assert_eq!(m.sim, reference[&sc.id()], "{}: permuted plan", sc.id());
    }
}

/// A kernel wrapper counting functional executions (`Runnable::run`
/// calls) across all of its instances.
struct CountingKernel {
    inner: Box<dyn Kernel>,
    runs: Arc<AtomicUsize>,
}

struct CountingRunnable {
    inner: Box<dyn Runnable>,
    runs: Arc<AtomicUsize>,
}

impl Kernel for CountingKernel {
    fn meta(&self) -> KernelMeta {
        self.inner.meta()
    }
    fn instantiate(&self, scale: Scale, seed: u64) -> Box<dyn Runnable> {
        Box::new(CountingRunnable {
            inner: self.inner.instantiate(scale, seed),
            runs: self.runs.clone(),
        })
    }
}

impl Runnable for CountingRunnable {
    fn run(&mut self, imp: Impl, w: Width) {
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.inner.run(imp, w);
    }
    fn output(&self) -> Vec<f64> {
        self.inner.output()
    }
    fn work_ops(&self) -> u64 {
        self.inner.work_ops()
    }
}

/// The record-once guarantee, asserted directly: executing a campaign
/// plan performs exactly one functional kernel execution per scenario
/// group — not a warm+timed pair, and independent of how many cores
/// the group fans out to or how many workers shard it.
#[test]
fn each_scenario_group_executes_its_kernel_exactly_once() {
    let runs = Arc::new(AtomicUsize::new(0));
    let kernels: Vec<Box<dyn Kernel>> = swan::suite()
        .into_iter()
        .take(3)
        .map(|inner| {
            Box::new(CountingKernel {
                inner,
                runs: runs.clone(),
            }) as Box<dyn Kernel>
        })
        .collect();
    let plan = swan_core::plan(&kernels, Scale::test(), SEED);
    let groups: std::collections::HashSet<String> = plan.iter().map(|sc| sc.stream_id()).collect();
    assert!(plan.len() > groups.len(), "groups must fan out to cores");
    for threads in [1, 2] {
        runs.store(0, Ordering::SeqCst);
        let results = swan_core::execute_plan(&kernels, &plan, threads, |_| {});
        assert_eq!(results.len(), plan.len());
        assert_eq!(
            runs.load(Ordering::SeqCst),
            groups.len(),
            "exactly one functional execution per scenario group \
             ({threads} threads)"
        );
    }
    // The single-kernel convenience path keeps the same discipline.
    runs.store(0, Ordering::SeqCst);
    let _ = swan_core::measure_kernel(kernels[0].as_ref(), Scale::test(), SEED);
    let single_groups: std::collections::HashSet<String> = plan
        .iter()
        .filter(|sc| sc.kernel == 0)
        .map(|sc| sc.stream_id())
        .collect();
    assert_eq!(runs.load(Ordering::SeqCst), single_groups.len());
}

/// Multi-process extension of the sharding equivalence: three
/// concurrent `swan-report --worker i/3` processes, sharing one
/// checkpoint journal and one trace store, must jointly cover the plan
/// in disjoint shards — and an in-process resume over their journal
/// must reproduce a serial in-process campaign *exactly*, full-struct
/// equality per scenario, with nothing left to simulate.
#[test]
fn multi_process_worker_shards_resume_to_serial_campaign() {
    use std::process::Command;

    let scale_arg = format!("{}", Scale::test().0);
    let base = std::env::temp_dir().join(format!("swan-mp-workers-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let ckpt = base.join("journal");
    let tstore = base.join("traces");

    let children: Vec<_> = (0..3)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_swan-report"))
                .args(["--scale", &scale_arg, "--seed", "7"])
                .args(["--only", "lib=ZL", "--threads", "1"])
                .args(["--checkpoint", ckpt.to_str().expect("utf8")])
                .args(["--trace-store", tstore.to_str().expect("utf8")])
                .args(["--worker", &format!("{i}/3")])
                .output()
                .expect("spawn worker")
        })
        .collect();
    for (i, out) in children.iter().enumerate() {
        assert!(
            out.status.success(),
            "worker {i}/3 failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // The serial in-process reference over the same subset.
    let kernels = swan::suite();
    let full = swan_core::plan(&kernels, Scale::test(), SEED);
    let only = swan_core::ScenarioFilter::parse("lib=ZL").expect("filter");
    let selected = swan_core::filter_plan(&full, &[only]);
    assert!(!selected.is_empty());
    let serial = swan_core::execute_plan(&kernels, &selected, 1, |_| {});

    // Resume over the workers' joint journal: everything present,
    // nothing remaining, every measurement bit-identical to serial.
    let journal =
        swan_core::CampaignJournal::open(&ckpt, &kernels, Scale::test(), SEED).expect("open");
    let resume = journal.resume(&selected);
    assert!(
        resume.remaining.is_empty(),
        "three disjoint 1-of-3 shards must jointly complete the plan \
         (remaining: {:?})",
        resume.remaining
    );
    assert_eq!(journal.stats().discarded, 0, "no worker tore an entry");
    for ((sc, got), want) in selected.iter().zip(&resume.measurements).zip(&serial) {
        assert_eq!(
            got.as_ref(),
            Some(want),
            "{}: multi-process shard must equal serial in-process exactly",
            sc.id()
        );
    }

    // The coordinator CLI sees the same completeness: resumed == all
    // groups, executed == 0, and its row output matches a plain run.
    let coord = Command::new(env!("CARGO_BIN_EXE_swan-report"))
        .args(["--scale", &scale_arg, "--seed", "7"])
        .args(["--only", "lib=ZL", "--threads", "1"])
        .args(["--checkpoint", ckpt.to_str().expect("utf8")])
        .args(["--resume"])
        .output()
        .expect("spawn coordinator");
    assert!(coord.status.success());
    let stderr = String::from_utf8_lossy(&coord.stderr);
    assert!(
        stderr.contains("executed=0"),
        "coordinator must only aggregate:\n{stderr}"
    );
    let plain = Command::new(env!("CARGO_BIN_EXE_swan-report"))
        .args(["--scale", &scale_arg, "--seed", "7"])
        .args(["--only", "lib=ZL", "--threads", "1"])
        .output()
        .expect("spawn plain run");
    assert!(plain.status.success());
    assert_eq!(
        plain.stdout, coord.stdout,
        "coordinator rows must be byte-identical to an uncheckpointed run"
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// Codec memory bound: the encoded recording of a scenario group's
/// stream must be far smaller than the `Vec<TraceInstr>` it replaces,
/// at the golden (quick) scale — and the process-wide codec counters
/// must report it.
#[test]
fn recorded_stream_is_far_smaller_than_materialized_trace() {
    let kernels = swan::suite();
    let kernel = kernels
        .iter()
        .find(|k| k.meta().id() == "ZL.adler32")
        .expect("ZL.adler32");
    let before = swan_simd::trace::codec::recorded_totals();
    let (data, enc, _) =
        swan_core::record(kernel.as_ref(), Impl::Neon, Width::W128, Scale::quick(), 42);
    assert_eq!(
        enc.instr_count(),
        data.total(),
        "recording covers the stream"
    );
    let naive = enc.naive_bytes();
    assert_eq!(
        naive,
        data.total() * std::mem::size_of::<swan_simd::TraceInstr>() as u64
    );
    assert!(
        (enc.encoded_bytes() as u64) * 8 < naive,
        "encoded {} bytes vs naive {} bytes: the replay buffer must be \
         an order of magnitude below the materialized trace",
        enc.encoded_bytes(),
        naive
    );
    let after = swan_simd::trace::codec::recorded_totals();
    assert!(after.bytes >= before.bytes + enc.encoded_bytes() as u64);
    assert!(after.instrs >= before.instrs + enc.instr_count());
}

/// Store memory bound: recording a scenario group *through a trace
/// store* spills the encoding chunk by chunk, so the resident
/// recording state is O(chunk budget) — not O(stream) like the
/// in-memory path — and a warm-store replay performs no functional
/// execution while measuring bit-identically. This is the satellite
/// assertion behind the PR 4 "footprint to watch" note: at full paper
/// scale, per-worker replay buffers no longer grow with the stream.
#[test]
fn store_backed_recording_is_chunk_resident_and_bit_identical() {
    const BUDGET: usize = 4096;
    // One encoded record is at most a few dozen bytes; the chunk
    // buffer may overshoot the budget by at most one record.
    const RECORD_SLACK: u64 = 128;

    let kernels = swan::suite();
    let kernel = kernels
        .iter()
        .find(|k| k.meta().id() == "ZL.adler32")
        .expect("ZL.adler32");
    let dir = std::env::temp_dir().join(format!("swan-residency-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = swan_core::TraceStore::open(&dir, &kernels)
        .expect("open trace store")
        .chunk_budget(BUDGET);
    let cfgs = [
        CoreConfig::prime(),
        CoreConfig::gold(),
        CoreConfig::silver(),
    ];

    // No other test in this binary spills through the codec, so the
    // process-wide spill counters isolate this store's recorders.
    let before = swan_simd::trace::codec::recorded_totals();
    let cold = swan_core::measure_multi_with(
        kernel.as_ref(),
        Impl::Scalar,
        Width::W128,
        &cfgs,
        Scale::quick(),
        42,
        Some(&store),
    );
    let after = swan_simd::trace::codec::recorded_totals();
    let spilled = after.spilled_bytes - before.spilled_bytes;
    assert!(
        spilled > 10 * BUDGET as u64,
        "the group's stream ({spilled} encoded bytes) must span many chunks"
    );
    assert!(
        after.resident_peak <= BUDGET as u64 + RECORD_SLACK,
        "resident recording state must be O(chunk budget): peak {} vs budget {BUDGET}",
        after.resident_peak
    );
    assert!(
        after.resident_peak * 8 < spilled,
        "O(chunk) residency, not O(stream): peak {} vs {spilled} spilled",
        after.resident_peak
    );

    // Warm-store replay: zero functional executions (all hits), same
    // bits as the storeless in-memory flow.
    let warm = swan_core::measure_multi_with(
        kernel.as_ref(),
        Impl::Scalar,
        Width::W128,
        &cfgs,
        Scale::quick(),
        42,
        Some(&store),
    );
    let stats = store.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    let memory = swan_core::measure_multi(
        kernel.as_ref(),
        Impl::Scalar,
        Width::W128,
        &cfgs,
        Scale::quick(),
        42,
    );
    for ((c, w), m) in cold.iter().zip(&warm).zip(&memory) {
        assert_eq!(c.sim, w.sim, "cold == warm");
        assert_eq!(w.sim, m.sim, "store == memory");
        assert_eq!(c.trace.by_op, m.trace.by_op);
        assert_eq!(c.work_ops, m.work_ops);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
