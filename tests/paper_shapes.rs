//! Paper-shape integration tests: the qualitative claims of the
//! paper's evaluation must hold in the reproduction (who wins, by
//! roughly what factor, where the crossovers fall).

use swan::prelude::*;
use swan_accel::{GpuModel, NEON_PEAK_MACS_PER_SEC};
use swan_core::report::{self, FIG5_KERNELS};
use swan_core::{capture, simulate_trace, Library};
use swan_kernels::xp::{GemmF32, Shape};

fn find(kernels: &[Box<dyn Kernel>], lib: &str, name: &str) -> usize {
    kernels
        .iter()
        .position(|k| {
            k.meta().library == Library::from_symbol(lib).unwrap() && k.meta().name == name
        })
        .unwrap_or_else(|| panic!("{lib}.{name} not found"))
}

#[test]
fn crypto_libraries_have_highest_instruction_reduction() {
    // Figure 1: ZL and BS reduce dynamic instructions the most among
    // same-precision libraries thanks to the crypto extension.
    let prime = CoreConfig::prime();
    let kernels = swan::suite();
    let red = |lib: &str, name: &str| {
        let k = &kernels[find(&kernels, lib, name)];
        let s = measure(
            k.as_ref(),
            Impl::Scalar,
            Width::W128,
            &prime,
            Scale::test(),
            2,
        );
        let v = measure(
            k.as_ref(),
            Impl::Neon,
            Width::W128,
            &prime,
            Scale::test(),
            2,
        );
        s.trace.total() as f64 / v.trace.total() as f64
    };
    let aes = red("BS", "aes128_ctr");
    let fft = red("PF", "fft_forward");
    let audio = red("WA", "gain");
    assert!(aes > 8.0, "AES reduction {aes:.1}");
    assert!(fft < 4.0, "FFT reduction {fft:.1} (scalar-heavy library)");
    assert!(
        aes > 1.5 * audio,
        "crypto {aes:.1} vs vector-API {audio:.1}"
    );
}

#[test]
fn lower_precision_means_higher_reduction() {
    // Equation 1: 8-bit image kernels encode more work per instruction
    // than 32-bit float audio kernels.
    let prime = CoreConfig::prime();
    let kernels = swan::suite();
    let red = |lib: &str, name: &str| {
        let k = &kernels[find(&kernels, lib, name)];
        let s = measure(
            k.as_ref(),
            Impl::Scalar,
            Width::W128,
            &prime,
            Scale::test(),
            2,
        );
        let v = measure(
            k.as_ref(),
            Impl::Neon,
            Width::W128,
            &prime,
            Scale::test(),
            2,
        );
        s.trace.total() as f64 / v.trace.total() as f64
    };
    let image8 = red("SK", "convolve_vertical");
    let float32 = red("WA", "vector_add");
    assert!(
        image8 > float32,
        "8-bit {image8:.1}x vs 32-bit {float32:.1}x"
    );
}

#[test]
fn wider_registers_help_streaming_more_than_blocked_kernels() {
    // Figure 5(a): convolve (streaming) scales well to 1024-bit;
    // TM-prediction (16x16 blocks) barely moves.
    let prime = CoreConfig::prime();
    let kernels = swan::suite();
    let speedup_1024 = |lib: &str, name: &str| {
        let k = &kernels[find(&kernels, lib, name)];
        let (t128, ops) = capture(k.as_ref(), Impl::Neon, Width::W128, Scale::test(), 2);
        let (t1024, _) = capture(k.as_ref(), Impl::Neon, Width::W1024, Scale::test(), 2);
        let base = simulate_trace(&t128, &prime, 1.0, ops).sim.cycles as f64;
        let wide = simulate_trace(&t1024, &prime, 8.0, ops).sim.cycles as f64;
        base / wide
    };
    let streaming = speedup_1024("SK", "convolve_vertical");
    let blocked = speedup_1024("LW", "tm_predict");
    assert!(streaming > 2.5, "streaming 1024-bit speedup {streaming:.2}");
    assert!(
        streaming > 1.4 * blocked,
        "streaming {streaming:.2} vs blocked {blocked:.2}"
    );
}

#[test]
fn gpu_crossover_is_in_the_mflop_range() {
    // Figure 6: the Neon/GPU crossover falls in the single-digit
    // MFLOP range (the paper reports ~4M).
    let prime = CoreConfig::prime();
    let gpu = GpuModel::default();
    let shape = Shape {
        m: 64,
        k: 64,
        n: 512,
    };
    let kernel = GemmF32::with_shape(shape);
    let (tr, macs) = capture(&kernel, Impl::Neon, Width::W128, Scale(1.0), 3);
    let m = simulate_trace(&tr, &prime, 1.0, macs);
    let neon_rate = macs as f64 / m.seconds();
    assert!(
        neon_rate < NEON_PEAK_MACS_PER_SEC,
        "effective rate cannot exceed peak"
    );
    let crossover = gpu.crossover_macs(neon_rate, gpu.gemm_efficiency);
    assert!(
        (1e6..2e7).contains(&crossover),
        "crossover {crossover:.2e} MACs should be order-4M"
    );
}

#[test]
fn table4_counts_and_fig5_kernels_exist() {
    let kernels = swan::suite();
    let rep = report::tab4(&report::SuiteResults {
        kernels: vec![],
        scale: Scale::test(),
    });
    // tab4 on an empty suite trivially prints zeros; the real counts
    // come from metadata, so check them directly here.
    drop(rep);
    for (lib, name) in FIG5_KERNELS {
        find(&kernels, lib, name);
    }
}

#[test]
fn vectorization_raises_power_but_saves_energy() {
    // Figure 3 vs Figure 2: Neon draws more power yet finishes so much
    // earlier that energy drops.
    let prime = CoreConfig::prime();
    let kernels = swan::suite();
    let k = &kernels[find(&kernels, "LJ", "rgb_to_ycbcr")];
    let s = measure(
        k.as_ref(),
        Impl::Scalar,
        Width::W128,
        &prime,
        Scale::test(),
        2,
    );
    let v = measure(
        k.as_ref(),
        Impl::Neon,
        Width::W128,
        &prime,
        Scale::test(),
        2,
    );
    assert!(
        v.power_w > s.power_w,
        "Neon power {} vs {}",
        v.power_w,
        s.power_w
    );
    assert!(
        v.energy_j < s.energy_j,
        "Neon energy {} vs {}",
        v.energy_j,
        s.energy_j
    );
}
