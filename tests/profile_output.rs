//! Pins of the self-profiling attribution layer (`swan_core::profile`):
//!
//! 1. **Bit-identity**: a campaign measured with profiling enabled is
//!    byte-identical to one with it disabled — timers observe, they
//!    never steer.
//! 2. **`BENCH_profile.json` is sane**: the file `swan-report
//!    --profile` writes parses back, and on a single-threaded campaign
//!    the summed exclusive phase time never exceeds the wall clock.
//! 3. **Folded stacks are well-formed**: every line is
//!    `frame(;frame)* <ns>` with clean frame names, rooted at `swan`.
//! 4. **Serve latency fields**: the daemon's `stats` line carries
//!    per-tier cumulative wait counters (`cache_ns`/`shared_ns`/
//!    `fresh_ns`).

use std::process::Command;
use std::sync::{Mutex, MutexGuard, OnceLock};

use swan_core::profile::{self, Phase, ProfileReport};
use swan_core::report::{scenario_row, scenario_row_header};
use swan_core::{execute_plan_serial, filter_plan, plan, Scale, ScenarioFilter};

/// The profiling switch is process-global; tests that flip it
/// serialize here so the default-parallel test harness cannot
/// interleave an enabled and a disabled campaign.
fn profiling_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Render a small campaign subset exactly like `swan-report --only`.
fn subset_rows() -> String {
    let kernels = swan::suite();
    let full = plan(&kernels, Scale::test(), 42);
    let filter = ScenarioFilter::parse("lib=ZL").expect("valid filter");
    let selected = filter_plan(&full, std::slice::from_ref(&filter));
    assert!(!selected.is_empty());
    let measurements = execute_plan_serial(&kernels, &selected, |_| {});
    let mut out = scenario_row_header();
    for (sc, m) in selected.iter().zip(&measurements) {
        out.push_str(&scenario_row(sc, m));
        out.push('\n');
    }
    out
}

#[test]
fn profiling_on_and_off_are_byte_identical() {
    let _guard = profiling_lock();
    profile::set_enabled(false);
    let off = subset_rows();
    profile::reset();
    profile::set_enabled(true);
    let on = subset_rows();
    profile::set_enabled(false);
    assert_eq!(off, on, "profiling perturbed measured rows");

    // And the enabled run actually attributed the pipeline phases.
    let rep = profile::snapshot(u64::MAX);
    let record = rep.phase(Phase::Record).expect("record sampled");
    let timed = rep.phase(Phase::Timed).expect("timed sampled");
    let decode = rep.phase(Phase::Decode).expect("decode sampled");
    assert!(record.calls > 0 && record.instrs > 0, "{record:?}");
    assert!(timed.calls > 0 && timed.instrs > 0, "{timed:?}");
    assert!(decode.calls > 0 && decode.instrs > 0, "{decode:?}");
    assert_eq!(
        record.instrs, timed.instrs,
        "timed pass replays exactly what was recorded"
    );
    profile::reset();
}

/// One real `swan-report --profile` invocation shared by the
/// JSON/folded/stderr pins below.
fn profiled_run(dir: &std::path::Path) -> (ProfileReport, String, String) {
    let json = dir.join("BENCH_profile.json");
    let folded = dir.join("profile.folded");
    let out = Command::new(env!("CARGO_BIN_EXE_swan-report"))
        .args([
            "--quick",
            "--threads",
            "1",
            "--only",
            "kernel=adler32,impl=neon",
            "--profile",
            "--profile-json",
            json.to_str().unwrap(),
            "--profile-folded",
            folded.to_str().unwrap(),
        ])
        .output()
        .expect("run swan-report --profile");
    assert!(
        out.status.success(),
        "swan-report --profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    let json_text = std::fs::read_to_string(&json).expect("profile json written");
    let folded_text = std::fs::read_to_string(&folded).expect("folded stacks written");
    let rep = ProfileReport::parse_json(&json_text).expect("BENCH_profile.json parses");
    (rep, folded_text, stderr)
}

#[test]
fn profile_outputs_parse_sum_below_wall_and_fold_cleanly() {
    let dir = std::env::temp_dir().join(format!("swan-profile-out-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (rep, folded, stderr) = profiled_run(&dir);

    // JSON: every phase present, and on this single-threaded,
    // store-less campaign the attributed (exclusive) time is bounded
    // by the process wall clock.
    assert_eq!(rep.phases.len(), profile::PHASE_COUNT);
    assert!(rep.wall_ns > 0);
    assert!(
        rep.attributed_ns() <= rep.wall_ns,
        "exclusive phase times exceed wall: {} > {}",
        rep.attributed_ns(),
        rep.wall_ns
    );
    let timed = rep.phase(Phase::Timed).expect("timed phase");
    assert!(timed.self_ns > 0 && timed.instrs > 0, "{timed:?}");

    // Folded stacks: well-formed `frames ns` lines, rooted at swan,
    // and width (with the unattributed filler) equal to the wall.
    let mut width = 0u64;
    for line in folded.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("`frames ns` shape");
        assert!(stack.starts_with("swan"), "unrooted stack: {line}");
        for frame in stack.split(';') {
            assert!(
                !frame.is_empty()
                    && frame
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad frame `{frame}` in: {line}"
            );
        }
        width += ns.parse::<u64>().expect("numeric sample count");
    }
    assert_eq!(width, rep.wall_ns, "folded width equals wall clock");
    assert!(folded.contains("swan;campaign;timed "), "{folded}");

    // Human outputs land on stderr (stdout rows must stay
    // byte-comparable to an unprofiled run).
    assert!(stderr.contains("profile: wall_ms="), "{stderr}");
    assert!(stderr.lines().any(|l| l.starts_with("timed")), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_stats_line_reports_per_tier_latency() {
    let kernels = swan::suite();
    let config = swan_serve::ServerConfig {
        scale: Scale::test(),
        workers: 2,
        ..swan_serve::ServerConfig::default()
    };
    let server = swan_serve::Server::new(kernels, None, config);
    let filter = ScenarioFilter::parse("kernel=adler32,impl=neon").expect("valid filter");
    // First query executes fresh; the repeat answers from the cache.
    for _ in 0..2 {
        server
            .query(std::slice::from_ref(&filter))
            .expect("query succeeds");
    }
    let stats = server.stats_line();
    let field = |key: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key}= in: {stats}"))
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key}= in: {stats}"))
    };
    assert!(
        field("fresh_ns") > 0,
        "fresh execution waited a measurable time: {stats}"
    );
    // Cache answers resolve without waiting on a cell; the counter
    // exists and stays small but non-negative (parse is the pin).
    let _ = field("cache_ns");
    let _ = field("shared_ns");
    assert!(field("fresh") >= 1, "first query executed fresh: {stats}");
    assert_eq!(
        field("cache_hits"),
        field("fresh"),
        "repeat query answered every group from the cache: {stats}"
    );
}
