//! Batch-step equivalence: the devirtualized hot loop must be
//! invisible in the results.
//!
//! The replay engine's fast path decodes recorded streams into
//! resident instruction batches (`replay_batches`) and steps them
//! through monomorphic `warm_batch`/`step_batch` loops; the reference
//! path delivers the same stream one virtual `TraceSink::on_instr`
//! call at a time. These tests hold the two paths to exact
//! `SimResult` equality across the *full quick-scale golden plan* —
//! every kernel, implementation, width, and core of the committed
//! baseline — and pin the double-buffered (threaded) store replay to
//! the in-memory batch path bit for bit.

use std::collections::HashMap;
use swan_core::{plan, record_group, Scale, Scenario, TraceStore};
use swan_simd::trace::{HashSink, TraceSink};
use swan_uarch::{CoreConfig, MultiCore, SimResult};

const GOLDEN_SEED: u64 = 42;

/// Group a plan's scenarios by shared instruction stream, preserving
/// first-appearance order (the campaign executor's grouping, done by
/// hand here: the campaign's helpers are internal).
fn stream_groups(plan: &[Scenario]) -> Vec<Vec<&Scenario>> {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<Vec<&Scenario>> = Vec::new();
    for sc in plan {
        let i = *index.entry(sc.stream_id()).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[i].push(sc);
    }
    groups
}

/// Warm + timed batch replay of a recording through one model per
/// config, returning the finalized results.
fn run_batched(rec: &mut swan_core::GroupRecording, cfgs: &[CoreConfig]) -> Vec<SimResult> {
    let mut multi = MultiCore::new(cfgs);
    multi.begin_warm();
    rec.replay_batches(|b| multi.warm_batch(b));
    multi.begin_timed();
    rec.replay_batches(|b| multi.step_batch(b));
    multi.finalize()
}

/// Warm + timed per-instruction replay (virtual dispatch through the
/// `TraceSink` impl, one `step` per instruction) — the reference.
fn run_per_instr(rec: &mut swan_core::GroupRecording, cfgs: &[CoreConfig]) -> Vec<SimResult> {
    let mut multi = MultiCore::new(cfgs);
    multi.begin_warm();
    rec.replay_into(&mut multi);
    multi.begin_timed();
    rec.replay_into(&mut multi);
    multi.finalize()
}

/// The tentpole differential: across the complete quick-scale golden
/// plan (the 485 committed-baseline scenarios), batch stepping every
/// scenario group's recording equals per-instruction stepping,
/// `SimResult` field for field. Any divergence in the hoisted-phase
/// loop, the fixed-size unit pools, the const cost table, or the
/// batch decode arena shows up here as a named scenario.
#[test]
fn batch_stepping_matches_per_instruction_across_the_golden_plan() {
    let kernels = swan_kernels::all_kernels();
    let plan = plan(&kernels, Scale::quick(), GOLDEN_SEED);
    let groups = stream_groups(&plan);
    assert!(
        groups.len() > 100,
        "the golden plan must fan out into many stream groups"
    );
    for group in groups {
        let sc0 = group[0];
        let mut rec = record_group(
            kernels[sc0.kernel].as_ref(),
            sc0.imp,
            sc0.width,
            sc0.scale,
            sc0.seed,
            None,
        );
        let cfgs: Vec<CoreConfig> = group.iter().map(|sc| sc.core.config()).collect();
        let reference = run_per_instr(&mut rec, &cfgs);
        let batched = run_batched(&mut rec, &cfgs);
        assert_eq!(
            reference,
            batched,
            "{}: batch stepping diverged from per-instruction stepping",
            sc0.stream_id()
        );
    }
}

/// Double-buffered store replay: a recording replayed from a chunked
/// trace-store file (decoder thread running ahead of the simulating
/// thread, small chunk budget so every batch crosses several chunk
/// frames) must produce the same instruction stream — same FNV digest,
/// same count — and the same `SimResult`s as the in-memory batch path.
#[test]
fn double_buffered_store_replay_matches_in_memory_batches() {
    const BUDGET: usize = 2048;
    let kernels = swan_kernels::all_kernels();
    let k = kernels
        .iter()
        .find(|k| k.meta().id() == "ZL.adler32")
        .expect("ZL.adler32");
    let cfgs = [
        CoreConfig::prime(),
        CoreConfig::gold(),
        CoreConfig::silver(),
    ];

    // In-memory reference recording.
    let mut mem = record_group(
        k.as_ref(),
        swan_core::Impl::Neon,
        swan_simd::Width::W128,
        Scale::quick(),
        GOLDEN_SEED,
        None,
    );
    assert!(!mem.from_store());
    let mut mem_hash = HashSink::new();
    mem.replay_batches(|b| {
        for ins in b {
            mem_hash.on_instr(ins);
        }
    });
    let mem_sims = run_batched(&mut mem, &cfgs);

    // Store-backed: record once (cold), then replay from the verified
    // on-disk entry (warm hit) through the double-buffered decoder.
    let dir = std::env::temp_dir().join(format!("swan-batch-equiv-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir, &kernels)
        .expect("open trace store")
        .chunk_budget(BUDGET);
    let cold = record_group(
        k.as_ref(),
        swan_core::Impl::Neon,
        swan_simd::Width::W128,
        Scale::quick(),
        GOLDEN_SEED,
        Some(&store),
    );
    assert!(cold.from_store(), "cold recording spills into the store");
    let mut warm = record_group(
        k.as_ref(),
        swan_core::Impl::Neon,
        swan_simd::Width::W128,
        Scale::quick(),
        GOLDEN_SEED,
        Some(&store),
    );
    assert!(warm.from_store(), "second lookup must hit the store");
    let stats = store.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    let mut store_hash = HashSink::new();
    warm.replay_batches(|b| {
        for ins in b {
            store_hash.on_instr(ins);
        }
    });
    assert_eq!(
        (mem_hash.digest(), mem_hash.count()),
        (store_hash.digest(), store_hash.count()),
        "double-buffered store replay must yield the identical stream"
    );
    assert!(
        mem_hash.count() as usize > 100 * BUDGET / 64,
        "the stream must span many chunks at this budget"
    );
    let store_sims = run_batched(&mut warm, &cfgs);
    assert_eq!(
        mem_sims, store_sims,
        "store-backed batch simulation must equal in-memory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
