//! Offline shim of the `criterion` crate API subset the workspace uses.
//!
//! Provides `Criterion`, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is timed
//! with `std::time::Instant` over a fixed number of warm-up and sample
//! iterations and reported as a plain-text median line — enough to
//! track relative perf trajectories without the real crate's
//! statistics machinery.
//!
//! When the `CRITERION_JSON_PATH` environment variable is set, every
//! result is also collected and written there as one machine-readable
//! JSON document at `criterion_main!` exit (CI uploads it as the
//! `BENCH_ci.json` artifact), so the perf trajectory is diffable
//! across runs without scraping the text output.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark (API-compatible subset of
/// the real crate). Declaring `Elements(n)` makes the JSON report
/// carry `elements` and derived `elems_per_sec` for the bench — the
/// fields the `swan-report --bench-gate` regression check compares.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
}

/// Results accumulated for the JSON report:
/// (benchmark id, median ns, elements per iteration if declared).
static RESULTS: Mutex<Vec<(String, u128, Option<u64>)>> = Mutex::new(Vec::new());

fn record_result(id: &str, median: Duration, elements: Option<u64>) {
    RESULTS
        .lock()
        .expect("bench results lock")
        .push((id.to_string(), median.as_nanos(), elements));
}

/// Write every recorded benchmark result as a JSON document to the
/// path named by `CRITERION_JSON_PATH` (no-op when unset). Called by
/// the `criterion_main!` expansion after all groups have run.
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_JSON_PATH") else {
        return;
    };
    let results = RESULTS.lock().expect("bench results lock");
    let mut s = String::from("{\n  \"format\": 2,\n  \"benches\": [\n");
    for (i, (id, ns, elements)) in results.iter().enumerate() {
        let escaped: String = id
            .chars()
            .map(|c| match c {
                '"' => "\\\"".to_string(),
                '\\' => "\\\\".to_string(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
                c => c.to_string(),
            })
            .collect();
        // Throughput-carrying rows get elements + integer elems/sec so
        // the gate can compare without re-deriving from wall-clock.
        let throughput = match elements {
            Some(e) if *ns > 0 => {
                let eps = (*e as u128 * 1_000_000_000) / ns;
                format!(", \"elements\": {e}, \"elems_per_sec\": {eps}")
            }
            Some(e) => format!(", \"elements\": {e}"),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"id\": \"{escaped}\", \"median_ns\": {ns}{throughput}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, s) {
        eprintln!("warning: cannot write bench JSON to {path}: {e}");
    } else {
        eprintln!("bench JSON written to {path} ({} benches)", results.len());
    }
}

/// Per-invocation timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, once per sample, after one warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the throughput of subsequent benches in this group
    /// (matches the real crate: the setting persists until changed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(e) = t;
        self.throughput = Some(e);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        let median = b.median();
        record_result(
            &format!("{}/{}", self.name, id.as_ref()),
            median,
            self.throughput,
        );
        println!(
            "bench: {}/{:<40} {}",
            self.name,
            id.as_ref(),
            fmt_duration(median)
        );
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 10,
        };
        f(&mut b);
        let median = b.median();
        record_result(id.as_ref(), median, None);
        println!("bench: {:<40} {}", id.as_ref(), fmt_duration(median));
        self
    }
}

/// Opaque-value helper (re-exported for parity with the real crate).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
