//! Offline shim of the `proptest` crate API subset the workspace uses.
//!
//! Supports the `proptest!` macro with `pat in strategy` and
//! `name: type` parameters, `any::<T>()`, integer-range and `Just`
//! strategies, `prop_oneof!`, `proptest::collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are drawn from a
//! deterministic per-test generator; there is no shrinking — the
//! failing input values appear in the panic message instead.

/// Deterministic case generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor (one per test function).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
#[derive(Debug)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() as usize) % self.0.len();
        self.0[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, roughly symmetric values; property tests here never
        // need NaN/inf inputs.
        ((rng.next_u64() >> 40) as f32 / (1u64 << 23) as f32) - 1.0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 52) as f64) - 1.0
    }
}

/// Strategy adapter for [`Arbitrary`] types (`any::<T>()`).
#[derive(Clone, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + unit as $t * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + unit as $t * (hi - lo)
            }
        }
    )+};
}
range_strategy_float!(f32, f64);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`](crate::collection::vec): a fixed length or a length range.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy for `Vec<S::Value>` of a given size.
    #[derive(Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($arm),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty =
            $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $($crate::__proptest_bind!($rng; $($rest)*);)?
    };
    ($rng:ident; $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
        $($crate::__proptest_bind!($rng; $($rest)*);)?
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Seed per test name so sibling tests draw distinct streams.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                });
            for case in 0..cfg.cases {
                let mut __proptest_rng = $crate::TestRng::new(seed ^ (case as u64) << 32);
                $crate::__proptest_bind!(__proptest_rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_any(n in 10u32..100, flag: bool, x in any::<u8>()) {
            prop_assert!((10..100).contains(&n));
            let _ = (flag, x);
        }

        #[test]
        fn oneof_and_vec(
            w in prop_oneof![Just(1usize), Just(2), Just(4)],
            data in crate::collection::vec(any::<u8>(), 32),
        ) {
            prop_assert!(matches!(w, 1 | 2 | 4));
            prop_assert_eq!(data.len(), 32);
        }
    }
}
