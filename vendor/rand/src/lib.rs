//! Offline shim of the `rand` crate API subset the workspace uses.
//!
//! The container building this workspace has no crates.io access, so
//! the few `rand` entry points the kernel input generators need are
//! reimplemented here over a SplitMix64 engine. Streams differ from the
//! real `StdRng` (which is fine: every consumer only needs seeded
//! determinism, not rand-compatible values).

/// Random number generator engines.
pub mod rngs {
    /// Deterministic seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeding constructor trait.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so nearby seeds diverge immediately.
        let mut r = StdRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        };
        r.next_u64();
        StdRng {
            state: r.next_u64(),
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Range forms accepted by [`Rng::gen_range`]. Parametrized over the
/// element type so the target type is inferred from the call site
/// (matching the real crate's `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draw a value inside the range.
    fn sample_range(self, rng: &mut StdRng) -> T;
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_range(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range(self, rng: &mut StdRng) -> $t {
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_range(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )+};
}
range_float!(f32, f64);

/// The generator trait: uniform values and ranges.
pub trait Rng {
    /// Draw one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draw a value uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Draw a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_range(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i16 = r.gen_range(-100i16..=100);
            assert!((-100..=100).contains(&v));
            let u: u8 = r.gen_range(1..=255u8);
            assert!(u >= 1);
            let f: f32 = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
